#include "ppg/pp/engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ppg/pp/batched_engine.hpp"
#include "ppg/pp/census_engine.hpp"
#include "ppg/pp/multibatch_engine.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

const char* engine_kind_name(engine_kind kind) {
  switch (kind) {
    case engine_kind::agent:
      return "agent";
    case engine_kind::census:
      return "census";
    case engine_kind::batched:
      return "batched";
    case engine_kind::multibatch:
      return "multibatch";
  }
  return "unknown";
}

engine_kind engine_kind_from_name(std::string_view name) {
  for (const auto kind : {engine_kind::agent, engine_kind::census,
                          engine_kind::batched, engine_kind::multibatch}) {
    if (name == engine_kind_name(kind)) return kind;
  }
  PPG_CHECK(false, "unknown engine kind '" + std::string(name) + "'");
}

json sim_engine::snapshot_envelope(std::uint64_t interactions,
                                   const rng& gen) const {
  json snapshot = json::object();
  snapshot["state_version"] = engine_state_version;
  snapshot["engine"] = engine_kind_name(kind());
  snapshot["interactions"] = interactions;
  const auto state = gen.save();
  snapshot["rng"] =
      json_uint_array({state[0], state[1], state[2], state[3]});
  return snapshot;
}

sim_engine::snapshot_core sim_engine::check_snapshot_envelope(
    const json& snapshot) const {
  const char* where = "engine snapshot";
  const std::uint64_t version =
      json_require_uint(snapshot, "state_version", where);
  PPG_CHECK(version == engine_state_version,
            "engine snapshot: unsupported state_version " +
                std::to_string(version) + " (this build reads " +
                std::to_string(engine_state_version) + ")");
  const std::string& name = json_require_string(snapshot, "engine", where);
  PPG_CHECK(name == engine_kind_name(kind()),
            "engine snapshot: kind mismatch — snapshot is '" + name +
                "', restoring engine is '" + engine_kind_name(kind()) + "'");
  snapshot_core core;
  core.interactions = json_require_uint(snapshot, "interactions", where);
  const auto words = json_require_uint_array(snapshot, "rng", where);
  PPG_CHECK(words.size() == 4,
            "engine snapshot: rng state must be 4 words of 64 bits");
  core.gen.restore({words[0], words[1], words[2], words[3]});
  return core;
}

void sim_engine::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
  }
}

std::uint64_t sim_engine::run_until(const census_predicate& converged,
                                    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !converged(census())) {
    step();
    ++executed;
  }
  return executed;
}

std::vector<census_snapshot> sim_engine::run_with_snapshots(
    std::uint64_t steps, std::uint64_t snapshot_every) {
  PPG_CHECK(snapshot_every > 0, "snapshot interval must be positive");
  std::vector<census_snapshot> snapshots;
  std::uint64_t done = 0;
  while (done < steps) {
    const std::uint64_t chunk = std::min(snapshot_every, steps - done);
    run(chunk);
    done += chunk;
    snapshots.push_back({interactions(), census().counts()});
  }
  return snapshots;
}

double sim_engine::parallel_time() const {
  const census_view now = census();
  return static_cast<double>(interactions()) /
         static_cast<double>(now.population_size());
}

simulation::simulation(const protocol& proto, population agents, rng gen,
                       pair_sampling sampling)
    : proto_(&proto),
      agents_(std::move(agents)),
      gen_(gen),
      sampling_(sampling) {
  PPG_CHECK(agents_.num_state_kinds() >= proto_->num_states(),
            "population state space smaller than the protocol's");
  PPG_CHECK(agents_.size() >= 2, "a protocol needs at least two agents");
}

void simulation::step() {
  const interaction pair =
      sampling_ == pair_sampling::distinct
          ? sample_distinct_pair(agents_.size(), gen_)
          : sample_with_replacement_pair(agents_.size(), gen_);
  const auto [next_initiator, next_responder] =
      proto_->interact(agents_.state_of(pair.initiator),
                       agents_.state_of(pair.responder), gen_);
  // Catch rogue protocols loudly in every build type; the applications below
  // then take the debug-checked fast path (the pair indices come from the
  // scheduler, which guarantees they are in range).
  PPG_CHECK(next_initiator < agents_.num_state_kinds() &&
                next_responder < agents_.num_state_kinds(),
            "protocol emitted a state outside the population's space");
  agents_.apply_interaction(pair.initiator, next_initiator);
  // Self-interactions can occur under with_replacement sampling; applying
  // the responder update second would clobber the initiator's, so skip it.
  if (pair.responder != pair.initiator) {
    agents_.apply_interaction(pair.responder, next_responder);
  }
  ++interactions_;
}

void simulation::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
  }
}

json simulation::save_state() const {
  json snapshot = snapshot_envelope(interactions_, gen_);
  std::vector<std::uint64_t> states;
  states.reserve(agents_.size());
  for (const auto state : agents_.states()) {
    states.push_back(state);
  }
  snapshot["states"] = json_uint_array(states);
  return snapshot;
}

void simulation::restore_state(const json& snapshot) {
  json_require_keys(
      snapshot, {"state_version", "engine", "interactions", "rng", "states"},
      "agent snapshot");
  const auto core = check_snapshot_envelope(snapshot);
  const auto raw = json_require_uint_array(snapshot, "states", "agent snapshot");
  PPG_CHECK(raw.size() == agents_.size(),
            "agent snapshot: population size mismatch");
  std::vector<agent_state> states;
  states.reserve(raw.size());
  for (const auto state : raw) {
    PPG_CHECK(state < agents_.num_state_kinds(),
              "agent snapshot: state outside the population's space");
    states.push_back(static_cast<agent_state>(state));
  }
  // The population constructor re-derives the census from the states, so a
  // restored engine can never disagree with its own counts.
  agents_ = population(std::move(states), agents_.num_state_kinds());
  interactions_ = core.interactions;
  gen_ = core.gen;
}

namespace {

/// Expands a census into a per-agent state vector, grouped by state. Agents
/// are anonymous, so any ordering induces the same interaction law.
std::vector<agent_state> states_from_counts(
    const std::vector<std::uint64_t>& counts) {
  std::uint64_t n = 0;
  for (const auto c : counts) n += c;
  std::vector<agent_state> states;
  states.reserve(static_cast<std::size_t>(n));
  for (std::size_t s = 0; s < counts.size(); ++s) {
    for (std::uint64_t i = 0; i < counts[s]; ++i) {
      states.push_back(static_cast<agent_state>(s));
    }
  }
  return states;
}

}  // namespace

sim_spec::sim_spec(const protocol& proto, population initial,
                   pair_sampling sampling)
    : proto_(&proto),
      initial_(std::move(initial)),
      initial_counts_(initial_->counts()),
      n_(initial_->size()),
      sampling_(sampling) {
  PPG_CHECK(initial_->num_state_kinds() >= proto_->num_states(),
            "population state space smaller than the protocol's");
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
}

sim_spec::sim_spec(const protocol& proto,
                   std::vector<std::uint64_t> initial_counts,
                   pair_sampling sampling)
    : proto_(&proto),
      initial_counts_(std::move(initial_counts)),
      sampling_(sampling) {
  PPG_CHECK(initial_counts_.size() >= proto_->num_states(),
            "census state space smaller than the protocol's");
  for (const auto c : initial_counts_) n_ += c;
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
}

const population& sim_spec::initial() const {
  PPG_CHECK(initial_.has_value(),
            "spec was built from a census; no per-agent initial condition");
  return *initial_;
}

simulation sim_spec::instantiate(rng& gen) const {
  if (initial_.has_value()) {
    return simulation(*proto_, *initial_, gen.split(), sampling_);
  }
  return simulation(
      *proto_,
      population(states_from_counts(initial_counts_), initial_counts_.size()),
      gen.split(), sampling_);
}

std::unique_ptr<sim_engine> sim_spec::make_engine(
    engine_kind kind, rng& gen,
    std::shared_ptr<const kernel_table> kernel) const {
  switch (kind) {
    case engine_kind::agent:
      PPG_CHECK(kernel == nullptr,
                "the agent engine interprets the protocol directly and "
                "takes no precompiled kernel");
      return std::make_unique<simulation>(instantiate(gen));
    case engine_kind::census:
      return std::make_unique<census_engine>(*proto_, initial_counts_,
                                             gen.split(), sampling_,
                                             std::move(kernel));
    case engine_kind::batched:
      return std::make_unique<batched_engine>(*proto_, initial_counts_,
                                              gen.split(), sampling_,
                                              std::move(kernel));
    case engine_kind::multibatch:
      return std::make_unique<multibatch_engine>(*proto_, initial_counts_,
                                                 gen.split(), sampling_,
                                                 std::move(kernel));
  }
  PPG_CHECK(false, "unknown engine kind");
}

}  // namespace ppg
