#include "ppg/pp/engine.hpp"

#include <algorithm>

#include "ppg/util/error.hpp"

namespace ppg {

const char* engine_kind_name(engine_kind kind) {
  switch (kind) {
    case engine_kind::agent:
      return "agent";
    case engine_kind::census:
      return "census";
    case engine_kind::batched:
      return "batched";
  }
  return "unknown";
}

void sim_engine::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
  }
}

std::uint64_t sim_engine::run_until(const census_predicate& converged,
                                    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !converged(census())) {
    step();
    ++executed;
  }
  return executed;
}

std::vector<census_snapshot> sim_engine::run_with_snapshots(
    std::uint64_t steps, std::uint64_t snapshot_every) {
  PPG_CHECK(snapshot_every > 0, "snapshot interval must be positive");
  std::vector<census_snapshot> snapshots;
  std::uint64_t done = 0;
  while (done < steps) {
    const std::uint64_t chunk = std::min(snapshot_every, steps - done);
    run(chunk);
    done += chunk;
    snapshots.push_back({interactions(), census().counts()});
  }
  return snapshots;
}

double sim_engine::parallel_time() const {
  const census_view now = census();
  return static_cast<double>(interactions()) /
         static_cast<double>(now.population_size());
}

}  // namespace ppg
