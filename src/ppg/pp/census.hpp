// Census-level observation of a population: the per-state count vector plus
// the population size, without any per-agent data. All engine-facing
// observation — convergence predicates, snapshots, trace recording — is
// phrased against this view, so it works identically whether the executing
// engine keeps a per-agent array (agent engine) or only the counts (census
// and batched engines). See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ppg/pp/population.hpp"

namespace ppg {

/// Non-owning view of a census: per-state counts and the population size n.
/// Cheap to copy; valid only while the underlying counts vector lives.
class census_view {
 public:
  census_view(const std::vector<std::uint64_t>& counts,
              std::uint64_t population_size);

  /// Implicit: every population exposes its census. This keeps old
  /// population-based call sites (`gtft_level_counts(sim.agents(), k)`,
  /// `has_consensus(sim.agents())`) compiling against the census-based
  /// signatures.
  census_view(const population& agents);  // NOLINT(google-explicit-*)

  /// Number of agents currently in `state`.
  [[nodiscard]] std::uint64_t count(agent_state state) const;

  /// Full census (indexed by state).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return *counts_;
  }

  [[nodiscard]] std::uint64_t population_size() const { return n_; }
  [[nodiscard]] std::size_t num_state_kinds() const { return counts_->size(); }

  /// Census normalized by population size.
  [[nodiscard]] std::vector<double> fractions() const;
  [[nodiscard]] double fraction(agent_state state) const;

 private:
  const std::vector<std::uint64_t>* counts_;
  std::uint64_t n_;
};

/// A convergence predicate over the census — the uniform signature every
/// engine's run_until accepts. (Population-based predicates are gone: the
/// census view carries everything an anonymous-population predicate can
/// lawfully depend on, on every engine.)
using census_predicate = std::function<bool(const census_view&)>;

/// One census snapshot taken during a run.
struct census_snapshot {
  std::uint64_t interactions = 0;
  std::vector<std::uint64_t> counts;
};

}  // namespace ppg
