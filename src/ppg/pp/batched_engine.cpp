#include "ppg/pp/batched_engine.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

batched_engine::batched_engine(const protocol& proto,
                               std::vector<std::uint64_t> initial_counts,
                               rng gen, pair_sampling sampling,
                               std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                       : std::make_shared<const kernel_table>(proto)), counts_(std::move(initial_counts)), n_(0), gen_(gen) {
  PPG_CHECK(sampling == pair_sampling::distinct,
            "batched engine supports pair_sampling::distinct only; use the "
            "census engine for with_replacement sampling");
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "batched engine: precompiled kernel does not match the protocol");
  PPG_CHECK(counts_.size() >= kernel_->num_states(),
            "census state space smaller than the protocol's");
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts_[s] == 0,
              "batched engine: agents in states outside the protocol's space");
    n_ += counts_[s];
  }
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
  // c_u * c_v must not overflow: n^2 < 2^63 keeps every weight and the
  // non-identity mass (at most n(n-1) total) in range.
  PPG_CHECK(n_ <= 3'000'000'000ull, "batched engine caps n at 3e9");
  const std::size_t q = kernel_->num_states();
  responder_in_row_.assign(q * q, 0);
  is_active_row_.assign(q, 0);
  rows_with_responder_.assign(q, {});
  for (agent_state u = 0; u < q; ++u) {
    bool row_active = false;
    for (agent_state v = 0; v < q; ++v) {
      if (kernel_->identity(u, v)) continue;
      row_active = true;
      responder_in_row_[u * q + v] = 1;
      rows_with_responder_[v].push_back(u);
    }
    if (row_active) {
      active_rows_.push_back(u);
      is_active_row_[u] = 1;
    }
  }
  rebuild_row_sums();
}

void batched_engine::rebuild_row_sums() {
  const std::size_t q = kernel_->num_states();
  row_responder_sum_.assign(q, 0);
  for (agent_state u = 0; u < q; ++u) {
    for (agent_state v = 0; v < q; ++v) {
      if (responder_in_row_[u * q + v] != 0) {
        row_responder_sum_[u] += counts_[v];
      }
    }
  }
  active_weight_ = 0;
  for (const auto u : active_rows_) {
    active_weight_ += row_weight(u);
  }
}

json batched_engine::save_state() const {
  json snapshot = snapshot_envelope(interactions_, gen_);
  snapshot["counts"] = json_uint_array(counts_);
  snapshot["batches"] = batches_;
  snapshot["active_weight"] = active_weight_;
  return snapshot;
}

void batched_engine::restore_state(const json& snapshot) {
  json_require_keys(snapshot,
                    {"state_version", "engine", "interactions", "rng",
                     "counts", "batches", "active_weight"},
                    "batched snapshot");
  const auto core = check_snapshot_envelope(snapshot);
  const auto counts =
      json_require_uint_array(snapshot, "counts", "batched snapshot");
  PPG_CHECK(counts.size() == counts_.size(),
            "batched snapshot: state-space width mismatch");
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts[s] == 0,
              "batched snapshot: agents in states outside the protocol's "
              "space");
    total += counts[s];
  }
  PPG_CHECK(total == n_, "batched snapshot: population size mismatch");
  counts_ = counts;
  rebuild_row_sums();
  PPG_CHECK(json_require_uint(snapshot, "active_weight", "batched snapshot") ==
                active_weight_,
            "batched snapshot: stored non-identity mass disagrees with the "
            "census (corrupt checkpoint)");
  batches_ = json_require_uint(snapshot, "batches", "batched snapshot");
  interactions_ = core.interactions;
  gen_ = core.gen;
}

std::uint64_t batched_engine::row_weight(std::size_t row) const {
  const std::size_t q = kernel_->num_states();
  const std::uint64_t self = responder_in_row_[row * q + row];
  return counts_[row] * (row_responder_sum_[row] - self);
}

void batched_engine::add_count(agent_state state, std::int64_t delta) {
  // Single-pass incremental update of the total weight: expanding the row
  // products c_u * (R_u - s_u) around the count change gives
  //   d(active) = delta * [ (R_state - s_state)           (row rescales)
  //                       + sum_{u : state in S_u} c_u ]  (R_u shifts)
  // where the first term reads R_state *before* its own shift and the sum
  // reads c_u *after* the count update (so the u == state cross term uses
  // the new count). One extra accumulate inside the loop the responder
  // sums already needed, one multiply at the end — no per-batch re-sum
  // over active_rows_.
  const std::size_t q = kernel_->num_states();
  std::int64_t scaled = 0;
  if (is_active_row_[state] != 0) {
    scaled = static_cast<std::int64_t>(row_responder_sum_[state] -
                                       responder_in_row_[state * q + state]);
  }
  counts_[state] = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(counts_[state]) + delta);
  for (const auto u : rows_with_responder_[state]) {
    row_responder_sum_[u] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(row_responder_sum_[u]) + delta);
    scaled += static_cast<std::int64_t>(counts_[u]);
  }
  active_weight_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(active_weight_) + delta * scaled);
}

void batched_engine::apply_active(std::uint64_t active) {
  const std::size_t q = kernel_->num_states();
  std::uint64_t target = gen_.next_below(active);
  for (const auto u : active_rows_) {
    const std::uint64_t w = row_weight(u);
    if (target >= w) {
      target -= w;
      continue;
    }
    // Row u holds the interaction. Decompose target = slot * row_sum + r:
    // the remainder r is uniform over the responder slots of the row and
    // independent of the (discarded) initiator-agent slot.
    const std::uint64_t self = responder_in_row_[u * q + u];
    const std::uint64_t row_sum = row_responder_sum_[u] - self;
    std::uint64_t r = target % row_sum;
    for (agent_state v = 0; v < q; ++v) {
      if (!responder_in_row_[u * q + v]) continue;
      const std::uint64_t c = counts_[v] - (v == u ? 1u : 0u);
      if (r >= c) {
        r -= c;
        continue;
      }
      const auto [next_initiator, next_responder] = kernel_->sample(u, v, gen_);
      add_count(u, -1);
      add_count(v, -1);
      add_count(next_initiator, 1);
      add_count(next_responder, 1);
      return;
    }
    break;
  }
  PPG_CHECK(false, "active pair sampling target out of range");
}

void batched_engine::step() { run(1); }

std::uint64_t batched_engine::advance_batch(std::uint64_t budget) {
  ++batches_;
  const std::uint64_t active = active_weight_;
  if (active == 0) {
    // Every reachable interaction is an identity: the census is frozen, so
    // the whole budget elapses without a change.
    interactions_ += budget;
    return budget;
  }
  const double total = static_cast<double>(n_) * static_cast<double>(n_ - 1);
  const double p = static_cast<double>(active) / total;
  // Identity interactions before the next census change; geometric
  // memorylessness lets us redraw when a previous batch was truncated at a
  // step budget.
  const std::uint64_t skip = p >= 1.0 ? 0ull : gen_.next_geometric(p);
  if (skip >= budget) {
    interactions_ += budget;
    return budget;
  }
  interactions_ += skip + 1;
  apply_active(active);
  return skip + 1;
}

void batched_engine::run(std::uint64_t steps) {
  std::uint64_t remaining = steps;
  while (remaining > 0) {
    remaining -= advance_batch(remaining);
  }
}

std::uint64_t batched_engine::run_until(const census_predicate& converged,
                                        std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  // The census is unchanged across the skipped identity interactions, so
  // checking the predicate once per batch is exact.
  while (executed < max_steps) {
    if (converged(census())) return executed;
    executed += advance_batch(max_steps - executed);
  }
  return executed;
}

}  // namespace ppg
