// Checkpointable simulations: versioned, self-describing serialization of a
// running engine. A checkpoint file bundles
//   - the *spec* header: a sim_recipe — protocol by registry name + params
//     (pp/protocol_registry.hpp), the initial census, and the sampling
//     discipline — i.e. a serialized sim_spec, so the file reconstructs its
//     own simulation with no out-of-band context; and
//   - the *engine* snapshot: one engine's complete dynamical state
//     (sim_engine::save_state — census or agent array, interaction counter,
//     aggregation carries, full 256-bit RNG position).
// The contract is bit-exact resume: restore_checkpoint in a fresh process
// yields an engine whose continued trajectory is identical, draw for draw,
// to the engine that was saved (see DESIGN.md §9, including what "identical"
// means for the run()-budget-truncating engines). Versioning rule: additive
// fields keep schema_version, breaking changes bump it, and restore rejects
// versions it does not know.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

/// Version of the checkpoint file format (the outer envelope and the spec
/// header; engine snapshots carry their own engine_state_version).
inline constexpr std::uint64_t checkpoint_schema_version = 1;

/// pair_sampling ⇄ its canonical JSON string ("distinct" /
/// "with_replacement").
[[nodiscard]] const char* pair_sampling_name(pair_sampling sampling);
[[nodiscard]] pair_sampling pair_sampling_from_name(const std::string& name);

/// A self-describing sim_spec: the registry name + params that rebuild the
/// protocol, the initial census, and the sampling discipline. Unlike
/// sim_spec (which borrows its protocol), a recipe *owns* the protocol it
/// names, so a recipe restored from JSON is a complete, freestanding
/// simulation description — the checkpoint spec header, and the shape a
/// ppg-serve session request will take. Move-only; the materialized
/// sim_spec and every engine built from it stay valid across moves (the
/// owned protocol's address is stable).
class sim_recipe {
 public:
  sim_recipe(std::string protocol_name, json protocol_params,
             std::vector<std::uint64_t> initial_counts,
             pair_sampling sampling = pair_sampling::distinct);

  sim_recipe(sim_recipe&&) = default;
  sim_recipe& operator=(sim_recipe&&) = default;
  sim_recipe(const sim_recipe&) = delete;
  sim_recipe& operator=(const sim_recipe&) = delete;

  /// Strict parse of to_json()'s form: canonical keys {"protocol"
  /// {"name", "params"}, "initial_counts", "sampling"}, unknown keys
  /// rejected, errors via ppg::invariant_error.
  [[nodiscard]] static sim_recipe from_json(const json& doc);

  /// Canonical field order, numbers exact: from_json(to_json()) rebuilds an
  /// equivalent recipe and to_json() round-trips byte-identically through
  /// dump/parse.
  [[nodiscard]] json to_json() const;

  [[nodiscard]] const sim_spec& spec() const { return *spec_; }
  [[nodiscard]] const protocol& proto() const { return *proto_; }
  [[nodiscard]] const std::string& protocol_name() const { return name_; }
  [[nodiscard]] const json& protocol_params() const { return params_; }
  [[nodiscard]] pair_sampling sampling() const { return spec_->sampling(); }

 private:
  std::string name_;
  json params_;
  std::unique_ptr<protocol> proto_;
  std::optional<sim_spec> spec_;  ///< built against *proto_; set in ctor
};

/// Stable 64-bit FNV-1a hash of a JSON document's canonical compact form
/// (dump_string(false)). Deterministic across platforms and processes —
/// util/json's writer is byte-stable — so the value is a durable content
/// key, not a per-process hash.
[[nodiscard]] std::uint64_t json_fingerprint(const json& doc);

/// Canonical fingerprint of a recipe: json_fingerprint(recipe.to_json()).
/// Two recipes fingerprint equal iff their canonical JSON forms are byte
/// identical — i.e. same protocol name + params, same initial census, same
/// sampling — regardless of how the source documents were formatted. This
/// is the ppg-serve session-spec identity; the serve kernel cache keys on
/// the protocol subdocument alone (sessions differing only in census or
/// sampling share a compiled kernel).
[[nodiscard]] std::uint64_t recipe_fingerprint(const sim_recipe& recipe);

/// The checkpoint document for one running engine:
/// {"schema_version", "spec": recipe.to_json(), "engine": engine snapshot}.
/// The engine must have been built from recipe.spec() (the snapshot is
/// validated against the spec on restore, not here).
[[nodiscard]] json save_checkpoint(const sim_recipe& recipe,
                                   const sim_engine& engine);

/// A restored simulation: the rebuilt recipe and the engine continuing the
/// saved trajectory. The engine references the recipe's protocol — keep the
/// struct together (it is movable as a unit).
struct restored_sim {
  sim_recipe recipe;
  std::unique_ptr<sim_engine> engine;
};

/// Rebuilds a simulation from a checkpoint document: protocol via the
/// global registry, engine of the recorded kind from the recipe's spec,
/// state via restore_state. Throws ppg::invariant_error on any schema,
/// version, or consistency violation.
[[nodiscard]] restored_sim restore_checkpoint(const json& checkpoint);

/// restore_checkpoint with a precompiled kernel for the engine (nullptr
/// compiles fresh, identical to the one-argument form). The kernel must
/// have been compiled from a protocol with the same canonical JSON form as
/// the checkpoint's — ppg-serve guarantees this by keying its warm cache on
/// json_fingerprint of the protocol subdocument. Ignored for the agent
/// engine (which interprets the protocol directly).
[[nodiscard]] restored_sim restore_checkpoint(
    const json& checkpoint, std::shared_ptr<const kernel_table> kernel);

}  // namespace ppg
