// The multibatch engine: census-level execution that advances the chain in
// aggregated rounds of ~Theta(sqrt(n)) interactions instead of one at a
// time, with o(1) sampling work per interaction even on *dense* kernels —
// where nearly every interaction changes the census and the batched
// engine's identity-skipping degenerates to one O(q) sampling round per
// interaction.
//
// A round is the run of interactions up to and including the first "agent
// collision". Agents drawn in the current round are *touched*; while every
// interaction involves only untouched agents, the drawn pairs are disjoint,
// so their census effect is exchangeable and can be applied in aggregate:
//
//  1. the number of collision-free interactions J before the first
//     interaction re-using a touched agent follows the exact birthday law
//     P(J > j) = prod_{i<j} (n-2i)(n-2i-1) / (n(n-1)), drawn by inversion
//     over a log-survival table built once per population size
//     (stats/discrete_sampling's collision_run_sampler);
//  2. the q x q table of ordered state-pair counts of those J interactions
//     is drawn from multivariate hypergeometrics over the untouched census
//     (initiator sample, then responder sample, then a uniform matching by
//     initiator group — exactly the law of 2J distinct agents drawn
//     uniformly without replacement, paired in order);
//  3. the outcome split of each pair type is a multinomial over the
//     kernel's outcome distribution (deterministic pairs consume no draws);
//  4. the one colliding interaction is resolved sequentially — its pair is
//     uniform over ordered agent pairs with at least one touched agent —
//     after which touched agents rejoin the untouched pool and a new round
//     begins.
//
// Every step is an exact decomposition of the sequential scheduler's law,
// so the census at any run() boundary is distribution-identical to the
// agent/census/batched engines (DESIGN.md §8 gives the argument). Work per
// round is O(q^2 + log n) plus O(q) for the collision, i.e.
// O((q^2 + log n)/sqrt(n)) per interaction. Rounds shrink with n (the
// birthday law adapts by itself), and sub-q^2 rounds take a sequential
// per-pair path, so small populations degrade gracefully to exactly the
// census engine's per-interaction cost.
//
// Steps 2–3 are decomposed into fixed-law shards executed by the round core
// (pp/multibatch_round.hpp, DESIGN.md §11): set_shards() chooses how many
// threads execute them, and the trajectory is bit-identical at every
// setting, checkpoints included.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/kernel.hpp"
#include "ppg/pp/multibatch_round.hpp"

namespace ppg {

class multibatch_engine final : public sim_engine {
 public:
  /// Same contract as the batched engine: a kernel-bearing protocol,
  /// pair_sampling::distinct only, and n capped at ~3e9 so pair weights
  /// c_u * c_v fit in 64 bits.
  /// When `kernel` is non-null the engine uses that precompiled table
  /// instead of compiling its own — the ppg-serve warm-cache path; it must
  /// have been compiled from a protocol with the same canonical form (the
  /// constructor checks the state-space size, the caller owns semantic
  /// equality). Null compiles from `proto` as before.
  multibatch_engine(const protocol& proto,
                    std::vector<std::uint64_t> initial_counts, rng gen,
                    pair_sampling sampling = pair_sampling::distinct,
                    std::shared_ptr<const kernel_table> kernel = nullptr);

  void step() override;
  void run(std::uint64_t steps) override;

  /// Predicate semantics are per-interaction on every engine, and a round
  /// changes the census mid-aggregate, so run_until steps one interaction
  /// at a time (the base-class loop). Prefer run() with periodic
  /// census checks when aggregation throughput matters.
  using sim_engine::run_until;

  [[nodiscard]] census_view census() const override { return {counts_, n_}; }
  [[nodiscard]] std::uint64_t interactions() const override {
    return interactions_;
  }
  [[nodiscard]] engine_kind kind() const override {
    return engine_kind::multibatch;
  }

  /// Number of threads executing the round core's shard sub-draws; <= 1
  /// (the default) runs them inline. The decomposition itself is a fixed
  /// law — the trajectory, draw for draw, and every snapshot are
  /// bit-identical at any setting (pp/multibatch_round.hpp).
  void set_shards(std::size_t threads) { executor_.set_threads(threads); }
  [[nodiscard]] std::size_t shards() const { return executor_.threads(); }

  /// Aggregated rounds started and collisions resolved so far: the engine's
  /// seed-deterministic work metric. interactions() / (rounds() +
  /// collisions()) is the aggregation factor — ~sqrt(n) on any kernel.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// The residual-round carry: collision-free interactions of the current
  /// round drawn but not yet applied because a run() budget truncated the
  /// round (the birthday law is not memoryless, so the remainder carries
  /// across run() calls instead of being redrawn). Zero iff the engine sits
  /// at a round boundary. Exposed so truncation state is inspectable — and
  /// checkpointable — rather than opaque.
  [[nodiscard]] std::uint64_t residual_free() const { return pending_free_; }

  /// Whether the engine is inside a round: a collision-free run has been
  /// drawn (possibly fully applied) and the closing collision has not yet
  /// been resolved. True whenever residual_free() > 0, and also after the
  /// free run is exhausted but before the collision interaction executes.
  [[nodiscard]] bool mid_round() const { return collision_pending_; }

  /// Snapshot payload: counts, both touched/untouched pools, the
  /// round/collision counters, and the residual-round carry
  /// (pending_free / collision_pending) — a checkpoint taken inside a
  /// budget-truncated round resumes the same round, same law, same draws.
  /// Sharding adds no persistent state (shard streams are derived per
  /// aggregate application), so the schema is shard-count-independent.
  [[nodiscard]] json save_state() const override;
  void restore_state(const json& snapshot) override;

 private:
  /// Debug-asserted structural invariants of the round state (pool sums,
  /// carry consistency); active at every run() entry in Debug/ASan builds,
  /// compiled out in Release. restore_state enforces the same relations
  /// unconditionally via PPG_CHECK.
  void check_round_invariants() const;

  std::shared_ptr<const kernel_table> kernel_;
  std::vector<std::uint64_t> counts_;     ///< current census
  std::vector<std::uint64_t> untouched_;  ///< untouched agents by state
  std::vector<std::uint64_t> touched_;    ///< touched agents by current state
  std::uint64_t untouched_total_ = 0;
  std::uint64_t n_;
  rng gen_;
  std::uint64_t interactions_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t collisions_ = 0;
  /// Collision-free interactions of the current round not yet applied; when
  /// it reaches 0 with collision_pending_, the next interaction collides.
  std::uint64_t pending_free_ = 0;
  bool collision_pending_ = false;
  multibatch_executor executor_;  ///< the shared round core
};

/// One multibatch engine's complete dynamical state, decoded from or
/// encoded into the solo v1 snapshot schema (DESIGN.md §9). This is also
/// the ensemble engine's per-replica serialization unit: each entry of an
/// ensemble snapshot's "replicas" array is exactly this schema, so a
/// replica's entry restores into a solo engine and a solo snapshot slots
/// into an ensemble (DESIGN.md §11).
struct multibatch_snapshot {
  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> untouched;
  std::vector<std::uint64_t> touched;
  std::uint64_t untouched_total = 0;
  std::uint64_t interactions = 0;
  std::uint64_t rounds = 0;
  std::uint64_t collisions = 0;
  std::uint64_t pending_free = 0;
  bool collision_pending = false;
  rng gen;
};

/// Serializes to the solo multibatch schema, canonical key order.
[[nodiscard]] json dump_multibatch_snapshot(const multibatch_snapshot& state);

/// Parses and validates a solo multibatch snapshot: exact key set, known
/// state_version, engine == "multibatch", width/population/state-space
/// agreement, and the round-state invariants (pools partition the census,
/// residual carry consistent). Throws invariant_error on any violation.
[[nodiscard]] multibatch_snapshot parse_multibatch_snapshot(
    const json& snapshot, std::size_t width, std::uint64_t n,
    std::size_t num_states);

}  // namespace ppg
