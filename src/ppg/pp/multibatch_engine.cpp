#include "ppg/pp/multibatch_engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ppg/util/error.hpp"

namespace ppg {

multibatch_engine::multibatch_engine(const protocol& proto,
                                     std::vector<std::uint64_t> initial_counts,
                                     rng gen, pair_sampling sampling,
                                     std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                     : std::make_shared<const kernel_table>(proto)),
      counts_(std::move(initial_counts)),
      n_([&] {
        std::uint64_t n = 0;
        for (const auto c : counts_) n += c;
        return n;
      }()),
      gen_(gen),
      executor_(kernel_, counts_.size(), n_) {
  PPG_CHECK(sampling == pair_sampling::distinct,
            "multibatch engine supports pair_sampling::distinct only; use "
            "the census engine for with_replacement sampling");
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "multibatch engine: precompiled kernel does not match the "
            "protocol");
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts_[s] == 0,
              "multibatch engine: agents in states outside the protocol's "
              "space");
  }
  untouched_ = counts_;
  touched_.assign(counts_.size(), 0);
  untouched_total_ = n_;
}

void multibatch_engine::check_round_invariants() const {
#ifdef NDEBUG
  // The PPG_DCHECKs below compile out in Release; skip the O(q) sweep too.
  return;
#else
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_DCHECK(untouched_[s] + touched_[s] == counts_[s],
               "multibatch invariant: pools must partition the census");
    untouched_sum += untouched_[s];
  }
  PPG_DCHECK(untouched_sum == untouched_total_,
             "multibatch invariant: stale untouched_total");
  PPG_DCHECK(collision_pending_ || pending_free_ == 0,
             "multibatch invariant: residual carry outside a round");
  PPG_DCHECK(collision_pending_ || untouched_total_ == n_,
             "multibatch invariant: touched agents outside a round");
  PPG_DCHECK(2 * pending_free_ <= untouched_total_,
             "multibatch invariant: residual free run exceeds the untouched "
             "pool");
#endif
}

json dump_multibatch_snapshot(const multibatch_snapshot& state) {
  json snapshot = json::object();
  snapshot["state_version"] = engine_state_version;
  snapshot["engine"] = engine_kind_name(engine_kind::multibatch);
  snapshot["interactions"] = state.interactions;
  const auto words = state.gen.save();
  snapshot["rng"] = json_uint_array({words[0], words[1], words[2], words[3]});
  snapshot["counts"] = json_uint_array(state.counts);
  snapshot["untouched"] = json_uint_array(state.untouched);
  snapshot["touched"] = json_uint_array(state.touched);
  snapshot["untouched_total"] = state.untouched_total;
  snapshot["rounds"] = state.rounds;
  snapshot["collisions"] = state.collisions;
  snapshot["pending_free"] = state.pending_free;
  snapshot["collision_pending"] = state.collision_pending;
  return snapshot;
}

multibatch_snapshot parse_multibatch_snapshot(const json& snapshot,
                                              std::size_t width,
                                              std::uint64_t n,
                                              std::size_t num_states) {
  const char* where = "multibatch snapshot";
  json_require_keys(snapshot,
                    {"state_version", "engine", "interactions", "rng",
                     "counts", "untouched", "touched", "untouched_total",
                     "rounds", "collisions", "pending_free",
                     "collision_pending"},
                    where);
  const std::uint64_t version =
      json_require_uint(snapshot, "state_version", where);
  PPG_CHECK(version == engine_state_version,
            "multibatch snapshot: unsupported state_version " +
                std::to_string(version) + " (this build reads " +
                std::to_string(engine_state_version) + ")");
  const std::string& name = json_require_string(snapshot, "engine", where);
  PPG_CHECK(name == engine_kind_name(engine_kind::multibatch),
            "multibatch snapshot: engine kind is '" + name + "'");
  multibatch_snapshot state;
  state.interactions = json_require_uint(snapshot, "interactions", where);
  const auto words = json_require_uint_array(snapshot, "rng", where);
  PPG_CHECK(words.size() == 4,
            "multibatch snapshot: rng state must be 4 words of 64 bits");
  state.gen.restore({words[0], words[1], words[2], words[3]});
  state.counts = json_require_uint_array(snapshot, "counts", where);
  state.untouched = json_require_uint_array(snapshot, "untouched", where);
  state.touched = json_require_uint_array(snapshot, "touched", where);
  PPG_CHECK(state.counts.size() == width &&
                state.untouched.size() == width &&
                state.touched.size() == width,
            "multibatch snapshot: state-space width mismatch");
  state.untouched_total =
      json_require_uint(snapshot, "untouched_total", where);
  state.rounds = json_require_uint(snapshot, "rounds", where);
  state.collisions = json_require_uint(snapshot, "collisions", where);
  state.pending_free = json_require_uint(snapshot, "pending_free", where);
  state.collision_pending =
      json_require_bool(snapshot, "collision_pending", where);
  std::uint64_t total = 0;
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < width; ++s) {
    PPG_CHECK(s < num_states || state.counts[s] == 0,
              "multibatch snapshot: agents in states outside the protocol's "
              "space");
    PPG_CHECK(state.untouched[s] + state.touched[s] == state.counts[s],
              "multibatch snapshot: pools do not partition the census");
    total += state.counts[s];
    untouched_sum += state.untouched[s];
  }
  PPG_CHECK(total == n, "multibatch snapshot: population size mismatch");
  PPG_CHECK(untouched_sum == state.untouched_total,
            "multibatch snapshot: untouched_total disagrees with the pool");
  PPG_CHECK(state.collision_pending || state.pending_free == 0,
            "multibatch snapshot: residual carry outside a round");
  PPG_CHECK(state.collision_pending || state.untouched_total == n,
            "multibatch snapshot: touched agents outside a round");
  PPG_CHECK(2 * state.pending_free <= state.untouched_total,
            "multibatch snapshot: residual free run exceeds the untouched "
            "pool");
  return state;
}

json multibatch_engine::save_state() const {
  multibatch_snapshot state;
  state.counts = counts_;
  state.untouched = untouched_;
  state.touched = touched_;
  state.untouched_total = untouched_total_;
  state.interactions = interactions_;
  state.rounds = rounds_;
  state.collisions = collisions_;
  state.pending_free = pending_free_;
  state.collision_pending = collision_pending_;
  state.gen = gen_;
  return dump_multibatch_snapshot(state);
}

void multibatch_engine::restore_state(const json& snapshot) {
  auto state = parse_multibatch_snapshot(snapshot, counts_.size(), n_,
                                         kernel_->num_states());
  counts_ = std::move(state.counts);
  untouched_ = std::move(state.untouched);
  touched_ = std::move(state.touched);
  untouched_total_ = state.untouched_total;
  pending_free_ = state.pending_free;
  collision_pending_ = state.collision_pending;
  rounds_ = state.rounds;
  collisions_ = state.collisions;
  interactions_ = state.interactions;
  gen_ = state.gen;
}

void multibatch_engine::step() { run(1); }

void multibatch_engine::run(std::uint64_t steps) {
  check_round_invariants();
  multibatch_state st;
  st.counts = counts_.data();
  st.untouched = untouched_.data();
  st.touched = touched_.data();
  st.width = counts_.size();
  st.n = n_;
  st.untouched_total = untouched_total_;
  st.gen = &gen_;
  st.interactions = interactions_;
  st.rounds = rounds_;
  st.collisions = collisions_;
  st.pending_free = pending_free_;
  st.collision_pending = collision_pending_;
  executor_.run(st, steps);
  untouched_total_ = st.untouched_total;
  interactions_ = st.interactions;
  rounds_ = st.rounds;
  collisions_ = st.collisions;
  pending_free_ = st.pending_free;
  collision_pending_ = st.collision_pending;
}

}  // namespace ppg
