#include "ppg/pp/multibatch_engine.hpp"

#include <algorithm>
#include <cmath>

#include "ppg/stats/discrete_sampling.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

constexpr agent_state no_excluded_state = static_cast<agent_state>(-1);

/// The state holding the `target`-th agent (0-indexed) of the pool when its
/// agents are ordered by state; `excluded` removes one agent of that state
/// first (no_excluded_state removes none).
agent_state locate(const std::vector<std::uint64_t>& pool,
                   std::uint64_t target, agent_state excluded) {
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const std::uint64_t c = pool[s] - (s == excluded ? 1u : 0u);
    if (target < c) return static_cast<agent_state>(s);
    target -= c;
  }
  PPG_CHECK(false, "multibatch sampling target out of range");
}

}  // namespace

multibatch_engine::multibatch_engine(const protocol& proto,
                                     std::vector<std::uint64_t> initial_counts,
                                     rng gen, pair_sampling sampling,
                                     std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                       : std::make_shared<const kernel_table>(proto)), counts_(std::move(initial_counts)), n_(0), gen_(gen) {
  PPG_CHECK(sampling == pair_sampling::distinct,
            "multibatch engine supports pair_sampling::distinct only; use "
            "the census engine for with_replacement sampling");
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "multibatch engine: precompiled kernel does not match the protocol");
  PPG_CHECK(counts_.size() >= kernel_->num_states(),
            "census state space smaller than the protocol's");
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts_[s] == 0,
              "multibatch engine: agents in states outside the protocol's "
              "space");
    n_ += counts_[s];
  }
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
  // Collision-category weights (t*u etc.) must not overflow: n^2 < 2^63.
  PPG_CHECK(n_ <= 3'000'000'000ull, "multibatch engine caps n at 3e9");
  untouched_ = counts_;
  touched_.assign(counts_.size(), 0);
  untouched_total_ = n_;
  const auto q = static_cast<std::uint64_t>(kernel_->num_states());
  // Below ~4q^2 interactions the aggregate path's O(q^2) hypergeometric
  // table costs more than per-pair O(q) sampling, so short runs (small n:
  // the birthday law scales them as ~sqrt(n)) fall back to the sequential
  // path and the engine degrades to census-engine cost.
  aggregate_threshold_ = std::max<std::uint64_t>(16, 4 * q * q);
  log_ordered_pairs_ = std::log(static_cast<double>(n_)) +
                       std::log(static_cast<double>(n_ - 1));
}

std::uint64_t multibatch_engine::sample_collision_free_run() {
  // P(J > j) = prod_{i<j} (n-2i)(n-2i-1) / (n(n-1))
  //          = n! / (n-2j)! / (n(n-1))^j,
  // the birthday law of drawing ordered agent pairs until one re-uses an
  // agent. Inversion: J = max{j : S(j) >= U}, located by binary search on
  // the lgamma form of log S — S is decreasing in j, S(0) = 1 > log U's
  // level, and S vanishes once the pool is exhausted (2j > n - 1).
  double u = gen_.next_double();
  while (u <= 0.0) u = gen_.next_double();
  const double log_u = std::log(u);
  const double lg_n1 = std::lgamma(static_cast<double>(n_) + 1.0);
  const auto log_survival = [&](std::uint64_t j) {
    return lg_n1 - std::lgamma(static_cast<double>(n_ - 2 * j) + 1.0) -
           static_cast<double>(j) * log_ordered_pairs_;
  };
  // Invariant: log_survival(lo) >= log_u; hi is the largest j with a
  // positive survival (the pool supports at most n/2 disjoint pairs).
  std::uint64_t lo = 0;
  std::uint64_t hi = n_ / 2;
  if (log_survival(hi) >= log_u) return hi;
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (log_survival(mid) >= log_u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // S(1) = 1 exactly (the first pair of a round cannot collide); guard the
  // clamp against lgamma rounding so a round always has one interaction.
  return std::max<std::uint64_t>(lo, 1);
}

void multibatch_engine::apply_pair_type(agent_state u, agent_state v,
                                        std::uint64_t m) {
  counts_[u] -= m;
  counts_[v] -= m;
  const std::size_t support = kernel_->num_outcomes(u, v);
  if (support == 1) {
    // Deterministic pair: no draws, mirroring every engine's fast path.
    const outcome o = kernel_->outcome_at(u, v, 0);
    counts_[o.initiator] += m;
    counts_[o.responder] += m;
    touched_[o.initiator] += m;
    touched_[o.responder] += m;
    return;
  }
  outcome_probs_.resize(support);
  for (std::size_t k = 0; k < support; ++k) {
    outcome_probs_[k] = kernel_->outcome_at(u, v, k).probability;
  }
  const auto split = sample_multinomial(m, outcome_probs_, gen_);
  for (std::size_t k = 0; k < support; ++k) {
    if (split[k] == 0) continue;
    const outcome o = kernel_->outcome_at(u, v, k);
    counts_[o.initiator] += split[k];
    counts_[o.responder] += split[k];
    touched_[o.initiator] += split[k];
    touched_[o.responder] += split[k];
  }
}

void multibatch_engine::apply_free_aggregate(std::uint64_t free) {
  // The 2*free agents of a collision-free run are a uniform sample without
  // replacement from the untouched pool; odd positions (initiators) are a
  // simple random sample, even positions (responders) one from the
  // remainder, and conditioned on both multisets the initiator-responder
  // matching is uniform — realized by splitting the responder multiset
  // across initiator groups with sequential multivariate hypergeometrics.
  const auto initiators =
      sample_multivariate_hypergeometric(untouched_, free, gen_);
  for (std::size_t s = 0; s < untouched_.size(); ++s) {
    untouched_[s] -= initiators[s];
  }
  untouched_total_ -= free;
  auto responders =
      sample_multivariate_hypergeometric(untouched_, free, gen_);
  for (std::size_t s = 0; s < untouched_.size(); ++s) {
    untouched_[s] -= responders[s];
  }
  untouched_total_ -= free;
  const std::size_t q = kernel_->num_states();
  std::uint64_t remaining = free;
  for (std::size_t u = 0; u < q && remaining > 0; ++u) {
    if (initiators[u] == 0) continue;
    const auto row =
        sample_multivariate_hypergeometric(responders, initiators[u], gen_);
    for (std::size_t v = 0; v < q; ++v) {
      responders[v] -= row[v];
      if (row[v] > 0) {
        apply_pair_type(static_cast<agent_state>(u),
                        static_cast<agent_state>(v), row[v]);
      }
    }
    remaining -= initiators[u];
  }
}

void multibatch_engine::apply_free_sequential(std::uint64_t free) {
  for (std::uint64_t i = 0; i < free; ++i) {
    const agent_state u =
        locate(untouched_, gen_.next_below(untouched_total_),
               no_excluded_state);
    const agent_state v =
        locate(untouched_, gen_.next_below(untouched_total_ - 1), u);
    const auto [next_initiator, next_responder] = kernel_->sample(u, v, gen_);
    --untouched_[u];
    --untouched_[v];
    untouched_total_ -= 2;
    ++touched_[next_initiator];
    ++touched_[next_responder];
    --counts_[u];
    --counts_[v];
    ++counts_[next_initiator];
    ++counts_[next_responder];
  }
}

void multibatch_engine::resolve_collision() {
  const std::uint64_t u_total = untouched_total_;
  const std::uint64_t t_total = n_ - u_total;
  // An ordered pair of distinct agents conditioned on >= 1 touched agent:
  // categories touched-touched, touched-untouched, untouched-touched with
  // weights t(t-1), t*u, u*t (their sum is n(n-1) - u(u-1)).
  const std::uint64_t tt = t_total * (t_total - 1);
  const std::uint64_t tu = t_total * u_total;
  std::uint64_t x = gen_.next_below(tt + 2 * tu);
  agent_state initiator;
  agent_state responder;
  bool initiator_touched;
  bool responder_touched;
  if (x < tt) {
    initiator = locate(touched_, gen_.next_below(t_total), no_excluded_state);
    responder = locate(touched_, gen_.next_below(t_total - 1), initiator);
    initiator_touched = responder_touched = true;
  } else if (x < tt + tu) {
    initiator = locate(touched_, gen_.next_below(t_total), no_excluded_state);
    responder =
        locate(untouched_, gen_.next_below(u_total), no_excluded_state);
    initiator_touched = true;
    responder_touched = false;
  } else {
    initiator =
        locate(untouched_, gen_.next_below(u_total), no_excluded_state);
    responder = locate(touched_, gen_.next_below(t_total), no_excluded_state);
    initiator_touched = false;
    responder_touched = true;
  }
  const auto [next_initiator, next_responder] =
      kernel_->sample(initiator, responder, gen_);
  --(initiator_touched ? touched_ : untouched_)[initiator];
  --(responder_touched ? touched_ : untouched_)[responder];
  untouched_total_ -=
      (initiator_touched ? 0u : 1u) + (responder_touched ? 0u : 1u);
  ++touched_[next_initiator];
  ++touched_[next_responder];
  --counts_[initiator];
  --counts_[responder];
  ++counts_[next_initiator];
  ++counts_[next_responder];
}

void multibatch_engine::merge_touched() {
  for (std::size_t s = 0; s < touched_.size(); ++s) {
    untouched_[s] += touched_[s];
    touched_[s] = 0;
  }
  untouched_total_ = n_;
}

void multibatch_engine::check_round_invariants() const {
#ifdef NDEBUG
  // The PPG_DCHECKs below compile out in Release; skip the O(q) sweep too.
  return;
#else
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_DCHECK(untouched_[s] + touched_[s] == counts_[s],
               "multibatch invariant: pools must partition the census");
    untouched_sum += untouched_[s];
  }
  PPG_DCHECK(untouched_sum == untouched_total_,
             "multibatch invariant: stale untouched_total");
  PPG_DCHECK(collision_pending_ || pending_free_ == 0,
             "multibatch invariant: residual carry outside a round");
  PPG_DCHECK(collision_pending_ || untouched_total_ == n_,
             "multibatch invariant: touched agents outside a round");
  PPG_DCHECK(2 * pending_free_ <= untouched_total_,
             "multibatch invariant: residual free run exceeds the untouched "
             "pool");
#endif
}

json multibatch_engine::save_state() const {
  json snapshot = snapshot_envelope(interactions_, gen_);
  snapshot["counts"] = json_uint_array(counts_);
  snapshot["untouched"] = json_uint_array(untouched_);
  snapshot["touched"] = json_uint_array(touched_);
  snapshot["untouched_total"] = untouched_total_;
  snapshot["rounds"] = rounds_;
  snapshot["collisions"] = collisions_;
  snapshot["pending_free"] = pending_free_;
  snapshot["collision_pending"] = collision_pending_;
  return snapshot;
}

void multibatch_engine::restore_state(const json& snapshot) {
  const char* where = "multibatch snapshot";
  json_require_keys(snapshot,
                    {"state_version", "engine", "interactions", "rng",
                     "counts", "untouched", "touched", "untouched_total",
                     "rounds", "collisions", "pending_free",
                     "collision_pending"},
                    where);
  const auto core = check_snapshot_envelope(snapshot);
  const auto counts = json_require_uint_array(snapshot, "counts", where);
  const auto untouched = json_require_uint_array(snapshot, "untouched", where);
  const auto touched = json_require_uint_array(snapshot, "touched", where);
  PPG_CHECK(counts.size() == counts_.size() &&
                untouched.size() == counts_.size() &&
                touched.size() == counts_.size(),
            "multibatch snapshot: state-space width mismatch");
  const std::uint64_t untouched_total =
      json_require_uint(snapshot, "untouched_total", where);
  const std::uint64_t pending_free =
      json_require_uint(snapshot, "pending_free", where);
  const bool collision_pending =
      json_require_bool(snapshot, "collision_pending", where);
  std::uint64_t total = 0;
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts[s] == 0,
              "multibatch snapshot: agents in states outside the protocol's "
              "space");
    PPG_CHECK(untouched[s] + touched[s] == counts[s],
              "multibatch snapshot: pools do not partition the census");
    total += counts[s];
    untouched_sum += untouched[s];
  }
  PPG_CHECK(total == n_, "multibatch snapshot: population size mismatch");
  PPG_CHECK(untouched_sum == untouched_total,
            "multibatch snapshot: untouched_total disagrees with the pool");
  PPG_CHECK(collision_pending || pending_free == 0,
            "multibatch snapshot: residual carry outside a round");
  PPG_CHECK(collision_pending || untouched_total == n_,
            "multibatch snapshot: touched agents outside a round");
  PPG_CHECK(2 * pending_free <= untouched_total,
            "multibatch snapshot: residual free run exceeds the untouched "
            "pool");
  counts_ = counts;
  untouched_ = untouched;
  touched_ = touched;
  untouched_total_ = untouched_total;
  pending_free_ = pending_free;
  collision_pending_ = collision_pending;
  rounds_ = json_require_uint(snapshot, "rounds", where);
  collisions_ = json_require_uint(snapshot, "collisions", where);
  interactions_ = core.interactions;
  gen_ = core.gen;
}

void multibatch_engine::step() { run(1); }

void multibatch_engine::run(std::uint64_t steps) {
  check_round_invariants();
  std::uint64_t remaining = steps;
  while (remaining > 0) {
    if (!collision_pending_) {
      // New round: every agent is untouched (merge_touched ran), so the
      // birthday law starts from the full pool.
      pending_free_ = sample_collision_free_run();
      collision_pending_ = true;
      ++rounds_;
    }
    if (pending_free_ > 0) {
      // A run truncated by the step budget stays lawful: the remainder is
      // carried in pending_free_ and continues in the next call, so no
      // redraw is needed (and the birthday law is not memoryless).
      const std::uint64_t free = std::min(pending_free_, remaining);
      if (free < aggregate_threshold_) {
        apply_free_sequential(free);
      } else {
        apply_free_aggregate(free);
      }
      pending_free_ -= free;
      remaining -= free;
      interactions_ += free;
    }
    if (remaining == 0) break;
    resolve_collision();
    ++collisions_;
    ++interactions_;
    --remaining;
    collision_pending_ = false;
    merge_touched();
  }
}

}  // namespace ppg
