#include "ppg/pp/multibatch_engine.hpp"

#include <algorithm>
#include <utility>

#include "ppg/util/error.hpp"

namespace ppg {

multibatch_engine::multibatch_engine(const protocol& proto,
                                     std::vector<std::uint64_t> initial_counts,
                                     rng gen, pair_sampling sampling,
                                     std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                     : std::make_shared<const kernel_table>(proto)),
      counts_(std::move(initial_counts)),
      n_([&] {
        std::uint64_t n = 0;
        for (const auto c : counts_) n += c;
        return n;
      }()),
      gen_(gen),
      executor_(kernel_, counts_.size(), n_) {
  PPG_CHECK(sampling == pair_sampling::distinct,
            "multibatch engine supports pair_sampling::distinct only; use "
            "the census engine for with_replacement sampling");
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "multibatch engine: precompiled kernel does not match the "
            "protocol");
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts_[s] == 0,
              "multibatch engine: agents in states outside the protocol's "
              "space");
  }
  untouched_ = counts_;
  touched_.assign(counts_.size(), 0);
  untouched_total_ = n_;
}

void multibatch_engine::check_round_invariants() const {
#ifdef NDEBUG
  // The PPG_DCHECKs below compile out in Release; skip the O(q) sweep too.
  return;
#else
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_DCHECK(untouched_[s] + touched_[s] == counts_[s],
               "multibatch invariant: pools must partition the census");
    untouched_sum += untouched_[s];
  }
  PPG_DCHECK(untouched_sum == untouched_total_,
             "multibatch invariant: stale untouched_total");
  PPG_DCHECK(collision_pending_ || pending_free_ == 0,
             "multibatch invariant: residual carry outside a round");
  PPG_DCHECK(collision_pending_ || untouched_total_ == n_,
             "multibatch invariant: touched agents outside a round");
  PPG_DCHECK(2 * pending_free_ <= untouched_total_,
             "multibatch invariant: residual free run exceeds the untouched "
             "pool");
#endif
}

json multibatch_engine::save_state() const {
  json snapshot = snapshot_envelope(interactions_, gen_);
  snapshot["counts"] = json_uint_array(counts_);
  snapshot["untouched"] = json_uint_array(untouched_);
  snapshot["touched"] = json_uint_array(touched_);
  snapshot["untouched_total"] = untouched_total_;
  snapshot["rounds"] = rounds_;
  snapshot["collisions"] = collisions_;
  snapshot["pending_free"] = pending_free_;
  snapshot["collision_pending"] = collision_pending_;
  return snapshot;
}

void multibatch_engine::restore_state(const json& snapshot) {
  const char* where = "multibatch snapshot";
  json_require_keys(snapshot,
                    {"state_version", "engine", "interactions", "rng",
                     "counts", "untouched", "touched", "untouched_total",
                     "rounds", "collisions", "pending_free",
                     "collision_pending"},
                    where);
  const auto core = check_snapshot_envelope(snapshot);
  const auto counts = json_require_uint_array(snapshot, "counts", where);
  const auto untouched = json_require_uint_array(snapshot, "untouched", where);
  const auto touched = json_require_uint_array(snapshot, "touched", where);
  PPG_CHECK(counts.size() == counts_.size() &&
                untouched.size() == counts_.size() &&
                touched.size() == counts_.size(),
            "multibatch snapshot: state-space width mismatch");
  const std::uint64_t untouched_total =
      json_require_uint(snapshot, "untouched_total", where);
  const std::uint64_t pending_free =
      json_require_uint(snapshot, "pending_free", where);
  const bool collision_pending =
      json_require_bool(snapshot, "collision_pending", where);
  std::uint64_t total = 0;
  std::uint64_t untouched_sum = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts[s] == 0,
              "multibatch snapshot: agents in states outside the protocol's "
              "space");
    PPG_CHECK(untouched[s] + touched[s] == counts[s],
              "multibatch snapshot: pools do not partition the census");
    total += counts[s];
    untouched_sum += untouched[s];
  }
  PPG_CHECK(total == n_, "multibatch snapshot: population size mismatch");
  PPG_CHECK(untouched_sum == untouched_total,
            "multibatch snapshot: untouched_total disagrees with the pool");
  PPG_CHECK(collision_pending || pending_free == 0,
            "multibatch snapshot: residual carry outside a round");
  PPG_CHECK(collision_pending || untouched_total == n_,
            "multibatch snapshot: touched agents outside a round");
  PPG_CHECK(2 * pending_free <= untouched_total,
            "multibatch snapshot: residual free run exceeds the untouched "
            "pool");
  counts_ = counts;
  untouched_ = untouched;
  touched_ = touched;
  untouched_total_ = untouched_total;
  pending_free_ = pending_free;
  collision_pending_ = collision_pending;
  rounds_ = json_require_uint(snapshot, "rounds", where);
  collisions_ = json_require_uint(snapshot, "collisions", where);
  interactions_ = core.interactions;
  gen_ = core.gen;
}

void multibatch_engine::step() { run(1); }

void multibatch_engine::run(std::uint64_t steps) {
  check_round_invariants();
  multibatch_state st;
  st.counts = counts_.data();
  st.untouched = untouched_.data();
  st.touched = touched_.data();
  st.width = counts_.size();
  st.n = n_;
  st.untouched_total = untouched_total_;
  st.gen = &gen_;
  st.interactions = interactions_;
  st.rounds = rounds_;
  st.collisions = collisions_;
  st.pending_free = pending_free_;
  st.collision_pending = collision_pending_;
  executor_.run(st, steps);
  untouched_total_ = st.untouched_total;
  interactions_ = st.interactions;
  rounds_ = st.rounds;
  collisions_ = st.collisions;
  pending_free_ = st.pending_free;
  collision_pending_ = st.collision_pending;
}

}  // namespace ppg
