// Census trace recording: accumulates (interaction count, census) rows
// during a simulation and writes them as CSV for external plotting. Used by
// the examples and by downstream users who want the raw trajectories behind
// the bench tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ppg/pp/engine.hpp"

namespace ppg {

class census_recorder {
 public:
  /// `column_names` labels the census entries (one per state); the CSV
  /// header becomes "interactions,parallel_time,<column_names...>".
  explicit census_recorder(std::vector<std::string> column_names);

  /// Records the current census of any engine (agent, census, or batched).
  void record(const sim_engine& sim);

  /// Records an explicit row (for count-chain simulations without a
  /// simulation object). `n` is the population size used for parallel time.
  void record(std::uint64_t interactions, std::size_t n,
              const std::vector<std::uint64_t>& counts);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// One recorded row.
  struct row {
    std::uint64_t interactions = 0;
    double parallel_time = 0.0;
    std::vector<std::uint64_t> counts;
  };
  [[nodiscard]] const std::vector<row>& rows() const { return rows_; }

  /// Writes the full trace as CSV.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<row> rows_;
};

}  // namespace ppg
