#include "ppg/pp/kernel.hpp"

#include <cmath>

#include "ppg/util/error.hpp"

namespace ppg {

std::vector<outcome> protocol::outcome_distribution(
    agent_state /*initiator*/, agent_state /*responder*/) const {
  PPG_CHECK(false,
            "protocol exposes no transition kernel: override "
            "outcome_distribution (and has_kernel), or use the agent engine "
            "with an interact override");
}

std::pair<agent_state, agent_state> protocol::interact(
    agent_state initiator, agent_state responder, rng& gen) const {
  const auto dist = outcome_distribution(initiator, responder);
  PPG_CHECK(!dist.empty(), "empty outcome distribution");
  if (dist.size() == 1) {
    return {dist.front().initiator, dist.front().responder};
  }
  double u = gen.next_double();
  for (const auto& o : dist) {
    u -= o.probability;
    if (u < 0.0) return {o.initiator, o.responder};
  }
  // Guard against floating-point shortfall: the kernel contract guarantees
  // the probabilities sum to 1 up to rounding.
  return {dist.back().initiator, dist.back().responder};
}

std::string protocol::state_name(agent_state state) const {
  return "s" + std::to_string(state);
}

kernel_table::kernel_table(const protocol& proto) : q_(proto.num_states()) {
  PPG_CHECK(proto.has_kernel(),
            "protocol exposes no transition kernel; census/batched engines "
            "require outcome_distribution (agent engine works without one)");
  PPG_CHECK(q_ >= 1, "protocol must have at least one state");
  offsets_.reserve(q_ * q_ + 1);
  identity_.assign(q_ * q_, 0);
  offsets_.push_back(0);
  for (agent_state i = 0; i < q_; ++i) {
    for (agent_state r = 0; r < q_; ++r) {
      const auto dist = proto.outcome_distribution(i, r);
      PPG_CHECK(!dist.empty(), "empty outcome distribution");
      double total = 0.0;
      bool is_identity = true;
      for (const auto& o : dist) {
        PPG_CHECK(o.initiator < q_ && o.responder < q_,
                  "kernel outcome state out of range");
        PPG_CHECK(o.probability > 0.0, "kernel probabilities must be > 0");
        total += o.probability;
        entries_.push_back({o.initiator, o.responder, total});
        is_identity = is_identity && o.initiator == i && o.responder == r;
      }
      PPG_CHECK(std::abs(total - 1.0) <= 1e-9,
                "kernel probabilities must sum to 1");
      if (dist.size() > 1) fully_deterministic_ = false;
      identity_[index(i, r)] = is_identity ? 1 : 0;
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
  }
}

outcome kernel_table::outcome_at(agent_state initiator, agent_state responder,
                                 std::size_t k) const {
  const std::size_t pair = index(initiator, responder);
  const std::uint32_t begin = offsets_[pair];
  PPG_CHECK(begin + k < offsets_[pair + 1], "outcome index out of range");
  const entry& o = entries_[begin + k];
  const double previous = k == 0 ? 0.0 : entries_[begin + k - 1].cumulative;
  return {o.initiator, o.responder, o.cumulative - previous};
}

bool kernel_table::deterministic(agent_state initiator,
                                 agent_state responder) const {
  const std::size_t pair = index(initiator, responder);
  return offsets_[pair + 1] - offsets_[pair] == 1;
}

std::pair<agent_state, agent_state> kernel_table::sample(
    agent_state initiator, agent_state responder, rng& gen) const {
  const std::size_t pair = index(initiator, responder);
  const std::uint32_t begin = offsets_[pair];
  const std::uint32_t end = offsets_[pair + 1];
  if (end - begin == 1) {
    const entry& o = entries_[begin];
    return {o.initiator, o.responder};
  }
  const double u = gen.next_double();
  for (std::uint32_t e = begin; e + 1 < end; ++e) {
    if (u < entries_[e].cumulative) {
      return {entries_[e].initiator, entries_[e].responder};
    }
  }
  return {entries_[end - 1].initiator, entries_[end - 1].responder};
}

}  // namespace ppg
