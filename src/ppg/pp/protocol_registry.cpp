#include "ppg/pp/protocol_registry.hpp"

#include <utility>

#include "ppg/core/igt_protocol.hpp"
#include "ppg/games/closed_form.hpp"
#include "ppg/pp/protocols/approximate_majority.hpp"
#include "ppg/pp/protocols/leader_election.hpp"
#include "ppg/pp/protocols/rumor.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

constexpr const char* where_game = "game params";
constexpr const char* where_rule = "rule params";

/// A protocol whose params must be the empty object {} — the strict-parse
/// stance even for parameterless protocols, so a typo'd param fails loudly.
template <typename Proto>
std::unique_ptr<protocol> make_parameterless(const json& params) {
  json_require_keys(params, {}, "protocol params");
  return std::make_unique<Proto>();
}

std::unique_ptr<protocol> make_igt(const json& params) {
  json_require_keys(params, {"k", "discipline"}, "igt params");
  const std::uint64_t k = json_require_uint(params, "k", "igt params");
  const auto discipline = revision_discipline_from_name(
      json_require_string(params, "discipline", "igt params"));
  return std::make_unique<igt_protocol>(static_cast<std::size_t>(k),
                                        discipline);
}

std::unique_ptr<protocol> make_matrix_game(const json& params) {
  json_require_keys(params, {"game", "rule", "discipline"},
                    "matrix-game params");
  auto game =
      game_matrix_from_json(json_require(params, "game", "matrix-game params"));
  auto rule = update_rule_from_json(
      json_require(params, "rule", "matrix-game params"));
  const auto discipline = revision_discipline_from_name(
      json_require_string(params, "discipline", "matrix-game params"));
  return std::make_unique<game_protocol>(std::move(game), std::move(rule),
                                         discipline);
}

}  // namespace

protocol_registry& protocol_registry::global() {
  static protocol_registry* registry = [] {
    auto* r = new protocol_registry();
    r->add("rumor", make_parameterless<rumor_protocol>);
    r->add("approximate-majority",
           make_parameterless<approximate_majority_protocol>);
    r->add("leader-election", make_parameterless<leader_election_protocol>);
    r->add("igt", make_igt);
    r->add("matrix-game", make_matrix_game);
    return r;
  }();
  return *registry;
}

void protocol_registry::add(std::string name, factory make) {
  PPG_CHECK(!name.empty(), "protocol registry: empty name");
  PPG_CHECK(static_cast<bool>(make), "protocol registry: empty factory");
  PPG_CHECK(!contains(name),
            "protocol registry: duplicate name '" + name + "'");
  factories_.emplace_back(std::move(name), std::move(make));
}

bool protocol_registry::contains(const std::string& name) const {
  for (const auto& [key, make] : factories_) {
    (void)make;
    if (key == name) return true;
  }
  return false;
}

std::unique_ptr<protocol> protocol_registry::make(const std::string& name,
                                                  const json& params) const {
  for (const auto& [key, factory_fn] : factories_) {
    if (key == name) return factory_fn(params);
  }
  PPG_CHECK(false, "protocol registry: unknown protocol '" + name + "'");
}

std::vector<std::string> protocol_registry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [key, make] : factories_) {
    (void)make;
    result.push_back(key);
  }
  return result;
}

game_matrix game_matrix_from_json(const json& params) {
  const std::string& name = json_require_string(params, "name", where_game);
  if (name == "donation") {
    json_require_keys(params, {"name", "b", "c"}, where_game);
    return donation_matrix({json_require_number(params, "b", where_game),
                            json_require_number(params, "c", where_game)});
  }
  if (name == "prisoners-dilemma") {
    json_require_keys(
        params, {"name", "reward", "sucker", "temptation", "punishment"},
        where_game);
    return prisoners_dilemma_matrix(
        {json_require_number(params, "reward", where_game),
         json_require_number(params, "sucker", where_game),
         json_require_number(params, "temptation", where_game),
         json_require_number(params, "punishment", where_game)});
  }
  if (name == "hawk-dove") {
    json_require_keys(params, {"name", "value", "cost"}, where_game);
    return hawk_dove_matrix(json_require_number(params, "value", where_game),
                            json_require_number(params, "cost", where_game));
  }
  if (name == "stag-hunt") {
    json_require_keys(params, {"name", "stag", "hare"}, where_game);
    return stag_hunt_matrix(json_require_number(params, "stag", where_game),
                            json_require_number(params, "hare", where_game));
  }
  if (name == "rock-paper-scissors") {
    json_require_keys(params, {"name", "win", "loss"}, where_game);
    return rock_paper_scissors_matrix(
        json_require_number(params, "win", where_game),
        json_require_number(params, "loss", where_game));
  }
  if (name == "igt") {
    json_require_keys(params, {"name", "k", "b", "c", "delta", "s1", "g_max"},
                      where_game);
    rd_setting setting;
    setting.b = json_require_number(params, "b", where_game);
    setting.c = json_require_number(params, "c", where_game);
    setting.delta = json_require_number(params, "delta", where_game);
    setting.s1 = json_require_number(params, "s1", where_game);
    return igt_game_matrix(
        static_cast<std::size_t>(json_require_uint(params, "k", where_game)),
        setting, json_require_number(params, "g_max", where_game));
  }
  if (name == "custom") {
    json_require_keys(params, {"name", "strategies", "payoffs"}, where_game);
    std::vector<std::string> strategies;
    for (const auto& item :
         json_require_array(params, "strategies", where_game)) {
      PPG_CHECK(item.is_string(),
                "game params: strategy names must be strings");
      strategies.push_back(item.as_string());
    }
    std::vector<double> payoffs;
    for (const auto& item :
         json_require_array(params, "payoffs", where_game)) {
      PPG_CHECK(item.is_number(), "game params: payoffs must be numbers");
      payoffs.push_back(item.as_number());
    }
    return game_matrix(std::move(strategies), std::move(payoffs));
  }
  PPG_CHECK(false, "game params: unknown game '" + name + "'");
}

std::shared_ptr<const update_rule> update_rule_from_json(const json& params) {
  const std::string& name = json_require_string(params, "name", where_rule);
  if (name == "imitate-if-better") {
    json_require_keys(params, {"name"}, where_rule);
    return std::make_shared<imitate_if_better_rule>();
  }
  if (name == "proportional-imitation") {
    json_require_keys(params, {"name", "rate"}, where_rule);
    return std::make_shared<proportional_imitation_rule>(
        json_require_number(params, "rate", where_rule));
  }
  if (name == "logit") {
    json_require_keys(params, {"name", "temperature"}, where_rule);
    return std::make_shared<logit_response_rule>(
        json_require_number(params, "temperature", where_rule));
  }
  if (name == "igt-ladder") {
    json_require_keys(params, {"name", "k"}, where_rule);
    return std::make_shared<igt_ladder_rule>(
        static_cast<std::size_t>(json_require_uint(params, "k", where_rule)));
  }
  PPG_CHECK(false, "rule params: unknown rule '" + name + "'");
}

const char* revision_discipline_name(revision_discipline d) {
  return d == revision_discipline::one_way ? "one_way" : "two_way";
}

revision_discipline revision_discipline_from_name(const std::string& name) {
  if (name == "one_way") return revision_discipline::one_way;
  if (name == "two_way") return revision_discipline::two_way;
  PPG_CHECK(false, "unknown revision discipline '" + name + "'");
}

}  // namespace ppg
