// Agent population: n anonymous agents each holding a small-integer state,
// with per-state counts maintained incrementally for O(1) census queries.
#pragma once

#include <cstdint>
#include <vector>

namespace ppg {

using agent_state = std::uint32_t;

class population {
 public:
  /// `states[i]` is agent i's initial state; all states must be below
  /// `num_state_kinds`.
  population(std::vector<agent_state> states, std::size_t num_state_kinds);

  /// Homogeneous population: everyone starts in `state`.
  population(std::size_t n, agent_state state, std::size_t num_state_kinds);

  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] std::size_t num_state_kinds() const { return counts_.size(); }

  [[nodiscard]] agent_state state_of(std::size_t agent) const;
  void set_state(std::size_t agent, agent_state next);

  /// Hot-path variant of set_state for the simulation loop: preconditions
  /// (`agent < size()`, `next < num_state_kinds()`) are validated via
  /// ppg::invariant_error in debug builds only. An out-of-range `next` would
  /// otherwise silently corrupt the census counts; callers must guarantee
  /// the bounds (the engines do, via construction-time checks and the
  /// kernel-table contract).
  void apply_interaction(std::size_t agent, agent_state next);

  /// Number of agents currently in `state`.
  [[nodiscard]] std::uint64_t count(agent_state state) const;

  /// Full census (indexed by state).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  /// Every agent's current state, indexed by agent — the per-agent half of
  /// the population's dynamical state (the agent engine's checkpoint
  /// payload; the counts above are derived from it).
  [[nodiscard]] const std::vector<agent_state>& states() const {
    return states_;
  }

  /// Census normalized by population size.
  [[nodiscard]] std::vector<double> fractions() const;

 private:
  std::vector<agent_state> states_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace ppg
