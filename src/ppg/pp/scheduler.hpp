// Random scheduling of pairwise interactions. The standard population
// protocol scheduler draws a uniformly random *ordered pair of distinct
// agents* (initiator, responder) at every step; a with-replacement variant
// matches the paper's idealized transition probabilities (5) exactly and is
// provided for cross-checking the O(1/n) discrepancy (see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ppg/util/rng.hpp"

namespace ppg {

/// How the scheduler draws the interacting pair (DESIGN.md §4).
enum class pair_sampling : std::uint8_t {
  distinct,          ///< ordered pair of distinct agents (standard PP model)
  with_replacement,  ///< independent draws (paper's idealized probabilities)
};

/// One scheduled interaction.
struct interaction {
  std::size_t initiator = 0;
  std::size_t responder = 0;
};

/// Uniform random ordered pair of *distinct* agents from {0, ..., n-1}.
[[nodiscard]] interaction sample_distinct_pair(std::size_t n, rng& gen);

/// Uniform random ordered pair sampled independently (initiator may equal
/// responder); matches the mean-field probabilities used in the paper's
/// analysis.
[[nodiscard]] interaction sample_with_replacement_pair(std::size_t n,
                                                       rng& gen);

}  // namespace ppg
