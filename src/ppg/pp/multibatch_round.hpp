// The shared multibatch round core: the aggregated-round algorithm of the
// multibatch engine (birthday law + MVH pair tables + multinomial outcome
// splits, DESIGN.md §8) factored out of the engine class so that two
// executors can drive it —
//
//   * multibatch_engine: one trajectory, with the round's aggregate phase
//     optionally *sharded* across a worker pool (DESIGN.md §11);
//   * ensemble_engine: R replicas in lockstep over structure-of-arrays
//     planes, sharing one kernel and one tabulated birthday sampler.
//
// Sharded rounds. A collision-free run of `free` pairs is decomposed into
// L sub-draws by a fixed law, L = clamp(free / max(512, aggregate
// threshold), 1, 16) — a pure function of the run length, never of the
// thread count. The split is exact: drawing shard k's initiator and
// responder multisets from the pool *remaining* after shards < k (the
// conditional-split property of without-replacement sampling) gives the
// union the same law as one joint draw, and conditioned on the multisets
// the per-shard matchings and outcome splits are independent. The master
// stream performs the O(L·q) conditional splits and contributes one draw,
// `app_seed`; shard k's matching + multinomials then run on the derived
// stream rng(derive_stream_seed(app_seed, k)). Shard outputs are pure
// integer census deltas, so any execution order — inline, or any number of
// pool workers — merges to the bit-identical census and leaves every RNG at
// the bit-identical position. Sharding adds no persistent state: snapshots
// keep the unchanged multibatch schema and restore bit-exactly at any
// thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/kernel.hpp"
#include "ppg/stats/discrete_sampling.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {

/// A pointer view of one trajectory's multibatch round state: the census,
/// the untouched/touched pools (arrays of `width` counts owned by the
/// caller — an engine's vectors or one replica's slice of an ensemble's
/// SoA planes), the master RNG, and the round/carry scalars. The executor
/// mutates everything through this view; callers copy the scalars back out
/// after run().
struct multibatch_state {
  std::uint64_t* counts = nullptr;
  std::uint64_t* untouched = nullptr;
  std::uint64_t* touched = nullptr;
  std::size_t width = 0;  ///< state-space width of the three arrays
  std::uint64_t n = 0;
  std::uint64_t untouched_total = 0;
  rng* gen = nullptr;  ///< the trajectory's master stream
  std::uint64_t interactions = 0;
  std::uint64_t rounds = 0;
  std::uint64_t collisions = 0;
  /// Collision-free interactions of the current round drawn but not yet
  /// applied (the residual-round carry; see multibatch_engine).
  std::uint64_t pending_free = 0;
  bool collision_pending = false;
};

/// Executes multibatch rounds against multibatch_state views. Holds
/// everything a round needs that is *not* trajectory state: the compiled
/// kernel, the tabulated birthday sampler (one O(sqrt(n)) table shared by
/// every round of every replica), per-worker scratch buffers, and an
/// optional worker pool for sharded aggregate phases.
///
/// Thread contract: concurrent run() calls on *distinct* states are safe
/// iff each caller passes a distinct `worker` index below the set_workers()
/// bound and the executor has no shard pool (ensemble mode). With a shard
/// pool (set_threads > 1), run() must be called from a single thread with
/// worker 0 (solo-engine mode); the pool parallelizes inside the round.
class multibatch_executor {
 public:
  /// `width` is the census width (>= kernel->num_states(); higher states
  /// must hold zero agents), `n` the population size. Requires 2 <= n <=
  /// 3e9 (collision-category weights t*u must fit 64 bits).
  multibatch_executor(std::shared_ptr<const kernel_table> kernel,
                      std::size_t width, std::uint64_t n);

  /// Advances the trajectory by `steps` interactions — the multibatch run
  /// loop (rounds, residual carry, collision resolution). `worker` selects
  /// the scratch slot (see the thread contract above).
  void run(multibatch_state& st, std::uint64_t steps, std::size_t worker = 0);

  /// Number of worker threads executing shard sub-draws: <= 1 runs shards
  /// inline on the calling thread, > 1 spins up an internal pool. The
  /// trajectory is bit-identical at every setting — the decomposition law
  /// is fixed and shard streams are derived, so threads only change which
  /// core runs a shard.
  void set_threads(std::size_t threads);
  [[nodiscard]] std::size_t threads() const {
    return pool_ ? pool_->size() : 1;
  }

  /// Reserves scratch for `workers` concurrent run() callers (ensemble
  /// mode). Implies no shard pool.
  void set_workers(std::size_t workers);

  /// Runs below this take the sequential per-pair path (the O(q^2)
  /// aggregate tables would cost more than per-pair sampling).
  [[nodiscard]] std::uint64_t aggregate_threshold() const {
    return aggregate_threshold_;
  }

  /// The shard-decomposition law: how many sub-draws a collision-free run
  /// of `free` pairs splits into. Deliberately a function of the run length
  /// and the threshold only — never the thread count — so the trajectory is
  /// a fixed sequence of draws that any number of threads reproduces.
  [[nodiscard]] static std::uint64_t shard_count(
      std::uint64_t free, std::uint64_t aggregate_threshold);

  static constexpr std::uint64_t max_shards = 16;
  static constexpr std::uint64_t min_shard_grain = 512;

  [[nodiscard]] const kernel_table& kernel() const { return *kernel_; }
  [[nodiscard]] const collision_run_sampler& birthday() const {
    return birthday_;
  }

 private:
  struct worker_scratch {
    std::vector<double> probs;             ///< outcome-split probabilities
    std::vector<std::uint64_t> split;      ///< multinomial outcome counts
    std::vector<std::uint64_t> row;        ///< one matching row
    std::vector<std::uint64_t> shard_init; ///< L x width initiator censuses
    std::vector<std::uint64_t> shard_resp; ///< L x width responder censuses
    std::vector<std::int64_t> delta;       ///< accumulated census delta
    std::vector<std::uint64_t> touched_add;  ///< accumulated touched counts
  };

  void apply_free_aggregate(multibatch_state& st, std::uint64_t free,
                            std::size_t worker);
  void apply_free_sequential(multibatch_state& st, std::uint64_t free);
  /// One shard: matches `initiators` against `responders` (consumed) by
  /// conditional MVH rows, splitting each pair type's outcomes on `gen`
  /// (the shard's derived stream); accumulates into ws.delta/touched_add.
  void run_shard(std::size_t width, const std::uint64_t* initiators,
                 std::uint64_t* responders, rng& gen, worker_scratch& ws);
  void apply_pair_type(agent_state u, agent_state v, std::uint64_t m,
                       rng& gen, worker_scratch& ws);
  void merge_scratch(multibatch_state& st, worker_scratch& ws) const;
  void resolve_collision(multibatch_state& st);
  static void merge_touched(multibatch_state& st);

  std::shared_ptr<const kernel_table> kernel_;
  std::size_t width_;
  std::uint64_t n_;
  std::uint64_t aggregate_threshold_;
  collision_run_sampler birthday_;
  std::vector<worker_scratch> scratch_;
  std::unique_ptr<thread_pool> pool_;
};

}  // namespace ppg
