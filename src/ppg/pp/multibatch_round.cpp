#include "ppg/pp/multibatch_round.hpp"

#include <algorithm>

#include "ppg/util/error.hpp"

namespace ppg {
namespace {

constexpr agent_state no_excluded_state = static_cast<agent_state>(-1);

/// The state holding the `target`-th agent (0-indexed) of the pool when its
/// agents are ordered by state; `excluded` removes one agent of that state
/// first (no_excluded_state removes none).
agent_state locate(const std::uint64_t* pool, std::size_t width,
                   std::uint64_t target, agent_state excluded) {
  for (std::size_t s = 0; s < width; ++s) {
    const std::uint64_t c = pool[s] - (s == excluded ? 1u : 0u);
    if (target < c) return static_cast<agent_state>(s);
    target -= c;
  }
  PPG_CHECK(false, "multibatch sampling target out of range");
}

}  // namespace

multibatch_executor::multibatch_executor(
    std::shared_ptr<const kernel_table> kernel, std::size_t width,
    std::uint64_t n)
    : kernel_(std::move(kernel)), width_(width), n_(n), birthday_(n) {
  PPG_CHECK(kernel_ != nullptr, "multibatch executor needs a kernel");
  PPG_CHECK(width_ >= kernel_->num_states(),
            "census state space smaller than the protocol's");
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
  // Collision-category weights (t*u etc.) must not overflow: n^2 < 2^63.
  PPG_CHECK(n_ <= 3'000'000'000ull, "multibatch engine caps n at 3e9");
  const auto q = static_cast<std::uint64_t>(kernel_->num_states());
  // Below ~4q^2 interactions the aggregate path's O(q^2) hypergeometric
  // table costs more than per-pair O(q) sampling, so short runs (small n:
  // the birthday law scales them as ~sqrt(n)) fall back to the sequential
  // path and the engine degrades to census-engine cost.
  aggregate_threshold_ = std::max<std::uint64_t>(16, 4 * q * q);
  scratch_.resize(1);
}

std::uint64_t multibatch_executor::shard_count(
    std::uint64_t free, std::uint64_t aggregate_threshold) {
  // Grain: no shard smaller than the aggregate threshold (its tables must
  // amortize) or 512 pairs (below that, per-shard setup dominates).
  const std::uint64_t grain =
      std::max<std::uint64_t>(min_shard_grain, aggregate_threshold);
  return std::clamp<std::uint64_t>(free / grain, 1, max_shards);
}

void multibatch_executor::set_threads(std::size_t threads) {
  if (threads <= 1) {
    pool_.reset();
    return;
  }
  if (!pool_ || pool_->size() != threads) {
    pool_ = std::make_unique<thread_pool>(threads);
  }
  if (scratch_.size() < threads) scratch_.resize(threads);
}

void multibatch_executor::set_workers(std::size_t workers) {
  pool_.reset();
  scratch_.resize(std::max<std::size_t>(1, workers));
}

void multibatch_executor::apply_pair_type(agent_state u, agent_state v,
                                          std::uint64_t m, rng& gen,
                                          worker_scratch& ws) {
  ws.delta[u] -= static_cast<std::int64_t>(m);
  ws.delta[v] -= static_cast<std::int64_t>(m);
  const std::size_t support = kernel_->num_outcomes(u, v);
  if (support == 1) {
    // Deterministic pair: no draws, mirroring every engine's fast path.
    const outcome o = kernel_->outcome_at(u, v, 0);
    ws.delta[o.initiator] += static_cast<std::int64_t>(m);
    ws.delta[o.responder] += static_cast<std::int64_t>(m);
    ws.touched_add[o.initiator] += m;
    ws.touched_add[o.responder] += m;
    return;
  }
  ws.probs.resize(support);
  ws.split.resize(support);
  for (std::size_t k = 0; k < support; ++k) {
    ws.probs[k] = kernel_->outcome_at(u, v, k).probability;
  }
  sample_multinomial(m, ws.probs.data(), support, gen, ws.split.data());
  for (std::size_t k = 0; k < support; ++k) {
    if (ws.split[k] == 0) continue;
    const outcome o = kernel_->outcome_at(u, v, k);
    ws.delta[o.initiator] += static_cast<std::int64_t>(ws.split[k]);
    ws.delta[o.responder] += static_cast<std::int64_t>(ws.split[k]);
    ws.touched_add[o.initiator] += ws.split[k];
    ws.touched_add[o.responder] += ws.split[k];
  }
}

void multibatch_executor::run_shard(std::size_t width,
                                    const std::uint64_t* initiators,
                                    std::uint64_t* responders, rng& gen,
                                    worker_scratch& ws) {
  // Conditioned on the shard's initiator and responder multisets, the
  // initiator-responder matching is uniform — realized by splitting the
  // responder multiset across initiator groups with sequential conditional
  // MVH rows, exactly as the unsharded round did.
  const std::size_t q = kernel_->num_states();
  ws.row.resize(width);
  for (std::size_t u = 0; u < q; ++u) {
    if (initiators[u] == 0) continue;
    sample_multivariate_hypergeometric(responders, width, initiators[u], gen,
                                       ws.row.data());
    for (std::size_t v = 0; v < width; ++v) {
      responders[v] -= ws.row[v];
      if (ws.row[v] > 0) {
        apply_pair_type(static_cast<agent_state>(u),
                        static_cast<agent_state>(v), ws.row[v], gen, ws);
      }
    }
  }
}

void multibatch_executor::merge_scratch(multibatch_state& st,
                                        worker_scratch& ws) const {
  for (std::size_t s = 0; s < st.width; ++s) {
    if (ws.delta[s] != 0) {
      st.counts[s] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(st.counts[s]) + ws.delta[s]);
    }
    st.touched[s] += ws.touched_add[s];
  }
}

void multibatch_executor::apply_free_aggregate(multibatch_state& st,
                                               std::uint64_t free,
                                               std::size_t worker) {
  PPG_DCHECK(!pool_ || worker == 0,
             "sharded aggregate phases are single-caller");
  worker_scratch& ws = scratch_[worker];
  const std::uint64_t shards = shard_count(free, aggregate_threshold_);
  // One master draw seeds every shard stream of this application; the
  // split sizes are deterministic (free/L, remainder to the first shards).
  const std::uint64_t app_seed = (*st.gen)();
  const std::uint64_t base = free / shards;
  const std::uint64_t extra = free % shards;
  ws.shard_init.assign(static_cast<std::size_t>(shards) * st.width, 0);
  ws.shard_resp.assign(static_cast<std::size_t>(shards) * st.width, 0);
  // Conditional MVH splits on the master stream, in shard order: shard k
  // draws its initiator then responder multiset from the pool remaining
  // after shards < k, which gives the union of all shards the law of one
  // joint 2*free-agent draw (without-replacement sampling is exchangeable
  // and consistent under sequential subsampling).
  for (std::uint64_t k = 0; k < shards; ++k) {
    const std::uint64_t fk = base + (k < extra ? 1 : 0);
    std::uint64_t* init =
        ws.shard_init.data() + static_cast<std::size_t>(k) * st.width;
    std::uint64_t* resp =
        ws.shard_resp.data() + static_cast<std::size_t>(k) * st.width;
    sample_multivariate_hypergeometric(st.untouched, st.width, fk, *st.gen,
                                       init);
    for (std::size_t s = 0; s < st.width; ++s) st.untouched[s] -= init[s];
    st.untouched_total -= fk;
    sample_multivariate_hypergeometric(st.untouched, st.width, fk, *st.gen,
                                       resp);
    for (std::size_t s = 0; s < st.width; ++s) st.untouched[s] -= resp[s];
    st.untouched_total -= fk;
  }
  if (pool_ && shards > 1) {
    // Parallel phase: each task owns its scratch slot and accumulates the
    // shards it claims into an integer delta; the merge below is a plain
    // sum, so the census is bit-identical whatever the shard-to-worker
    // assignment.
    const std::size_t tasks =
        std::min<std::size_t>(pool_->size(), static_cast<std::size_t>(shards));
    for (std::size_t t = 0; t < tasks; ++t) {
      scratch_[t].delta.assign(st.width, 0);
      scratch_[t].touched_add.assign(st.width, 0);
    }
    pool_->run_sharded(
        static_cast<std::size_t>(shards),
        [&](std::size_t w, std::size_t k) {
          worker_scratch& sw = scratch_[w];
          rng shard_gen(derive_stream_seed(app_seed, k));
          run_shard(st.width, ws.shard_init.data() + k * st.width,
                    ws.shard_resp.data() + k * st.width, shard_gen, sw);
        });
    for (std::size_t t = 0; t < tasks; ++t) {
      merge_scratch(st, scratch_[t]);
    }
  } else {
    ws.delta.assign(st.width, 0);
    ws.touched_add.assign(st.width, 0);
    for (std::uint64_t k = 0; k < shards; ++k) {
      rng shard_gen(derive_stream_seed(app_seed, k));
      run_shard(st.width,
                ws.shard_init.data() + static_cast<std::size_t>(k) * st.width,
                ws.shard_resp.data() + static_cast<std::size_t>(k) * st.width,
                shard_gen, ws);
    }
    merge_scratch(st, ws);
  }
}

void multibatch_executor::apply_free_sequential(multibatch_state& st,
                                                std::uint64_t free) {
  rng& gen = *st.gen;
  for (std::uint64_t i = 0; i < free; ++i) {
    const agent_state u = locate(st.untouched, st.width,
                                 gen.next_below(st.untouched_total),
                                 no_excluded_state);
    const agent_state v = locate(st.untouched, st.width,
                                 gen.next_below(st.untouched_total - 1), u);
    const auto [next_initiator, next_responder] = kernel_->sample(u, v, gen);
    --st.untouched[u];
    --st.untouched[v];
    st.untouched_total -= 2;
    ++st.touched[next_initiator];
    ++st.touched[next_responder];
    --st.counts[u];
    --st.counts[v];
    ++st.counts[next_initiator];
    ++st.counts[next_responder];
  }
}

void multibatch_executor::resolve_collision(multibatch_state& st) {
  rng& gen = *st.gen;
  const std::uint64_t u_total = st.untouched_total;
  const std::uint64_t t_total = st.n - u_total;
  // An ordered pair of distinct agents conditioned on >= 1 touched agent:
  // categories touched-touched, touched-untouched, untouched-touched with
  // weights t(t-1), t*u, u*t (their sum is n(n-1) - u(u-1)).
  const std::uint64_t tt = t_total * (t_total - 1);
  const std::uint64_t tu = t_total * u_total;
  std::uint64_t x = gen.next_below(tt + 2 * tu);
  agent_state initiator;
  agent_state responder;
  bool initiator_touched;
  bool responder_touched;
  if (x < tt) {
    initiator = locate(st.touched, st.width, gen.next_below(t_total),
                       no_excluded_state);
    responder = locate(st.touched, st.width, gen.next_below(t_total - 1),
                       initiator);
    initiator_touched = responder_touched = true;
  } else if (x < tt + tu) {
    initiator = locate(st.touched, st.width, gen.next_below(t_total),
                       no_excluded_state);
    responder = locate(st.untouched, st.width, gen.next_below(u_total),
                       no_excluded_state);
    initiator_touched = true;
    responder_touched = false;
  } else {
    initiator = locate(st.untouched, st.width, gen.next_below(u_total),
                       no_excluded_state);
    responder = locate(st.touched, st.width, gen.next_below(t_total),
                       no_excluded_state);
    initiator_touched = false;
    responder_touched = true;
  }
  const auto [next_initiator, next_responder] =
      kernel_->sample(initiator, responder, gen);
  --(initiator_touched ? st.touched : st.untouched)[initiator];
  --(responder_touched ? st.touched : st.untouched)[responder];
  st.untouched_total -=
      (initiator_touched ? 0u : 1u) + (responder_touched ? 0u : 1u);
  ++st.touched[next_initiator];
  ++st.touched[next_responder];
  --st.counts[initiator];
  --st.counts[responder];
  ++st.counts[next_initiator];
  ++st.counts[next_responder];
}

void multibatch_executor::merge_touched(multibatch_state& st) {
  for (std::size_t s = 0; s < st.width; ++s) {
    st.untouched[s] += st.touched[s];
    st.touched[s] = 0;
  }
  st.untouched_total = st.n;
}

void multibatch_executor::run(multibatch_state& st, std::uint64_t steps,
                              std::size_t worker) {
  PPG_DCHECK(worker < scratch_.size(),
             "multibatch executor: worker index out of range");
  std::uint64_t remaining = steps;
  while (remaining > 0) {
    if (!st.collision_pending) {
      // New round: every agent is untouched (merge_touched ran), so the
      // birthday law starts from the full pool.
      st.pending_free = birthday_.sample(*st.gen);
      st.collision_pending = true;
      ++st.rounds;
    }
    if (st.pending_free > 0) {
      // A run truncated by the step budget stays lawful: the remainder is
      // carried in pending_free and continues in the next call, so no
      // redraw is needed (and the birthday law is not memoryless).
      const std::uint64_t free = std::min(st.pending_free, remaining);
      if (free < aggregate_threshold_) {
        apply_free_sequential(st, free);
      } else {
        apply_free_aggregate(st, free, worker);
      }
      st.pending_free -= free;
      remaining -= free;
      st.interactions += free;
    }
    if (remaining == 0) break;
    resolve_collision(st);
    ++st.collisions;
    ++st.interactions;
    --remaining;
    st.collision_pending = false;
    merge_touched(st);
  }
}

}  // namespace ppg
