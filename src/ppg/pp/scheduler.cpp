#include "ppg/pp/scheduler.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

interaction sample_distinct_pair(std::size_t n, rng& gen) {
  PPG_CHECK(n >= 2, "distinct pair needs at least two agents");
  interaction pair;
  pair.initiator = static_cast<std::size_t>(gen.next_below(n));
  // Sample the responder from the remaining n-1 agents without rejection.
  std::size_t r = static_cast<std::size_t>(gen.next_below(n - 1));
  if (r >= pair.initiator) ++r;
  pair.responder = r;
  return pair;
}

interaction sample_with_replacement_pair(std::size_t n, rng& gen) {
  PPG_CHECK(n >= 1, "population must be non-empty");
  interaction pair;
  pair.initiator = static_cast<std::size_t>(gen.next_below(n));
  pair.responder = static_cast<std::size_t>(gen.next_below(n));
  return pair;
}

}  // namespace ppg
