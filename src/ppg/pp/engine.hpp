// The uniform simulation-engine interface: every execution backend —
// agent-level loop, census-only sampler, batched geometric-skip sampler —
// exposes the same surface (step / run / run_until / run_with_snapshots /
// census / interactions / parallel_time), so drivers and experiments are
// written once and the backend is a runtime choice (sim_spec::make_engine).
// The protocol abstraction itself lives in pp/kernel.hpp.
// See DESIGN.md §3 for the engine architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "ppg/pp/census.hpp"
#include "ppg/pp/kernel.hpp"
#include "ppg/pp/scheduler.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

/// Which execution backend runs a sim_spec.
enum class engine_kind : std::uint8_t {
  agent,    ///< per-agent state array, one protocol::interact per step
  census,   ///< count vector only; samples the ordered *state* pair in O(q)
  batched,  ///< census + geometric batches that skip identity interactions
  /// census + aggregated ~sqrt(n)-interaction rounds (exact birthday /
  /// hypergeometric / multinomial law); o(1) work per interaction even on
  /// dense kernels.
  multibatch,
};

[[nodiscard]] const char* engine_kind_name(engine_kind kind);

/// Inverse of engine_kind_name; throws ppg::invariant_error on an unknown
/// name (strict checkpoint parsing).
[[nodiscard]] engine_kind engine_kind_from_name(std::string_view name);

/// Version stamped into every engine snapshot ("state_version"). Additive
/// changes keep the version; anything that changes the meaning of an
/// existing field bumps it, and restore_state rejects versions it does not
/// know. See DESIGN.md §9.
inline constexpr std::uint64_t engine_state_version = 1;

/// Interface of a running simulation. All engines implement the exact same
/// interaction law for a given (protocol, initial census, pair_sampling)
/// triple — they differ only in state representation and per-interaction
/// cost, so results are exchangeable at the distribution level (engines
/// consume random draws differently, so trajectories are not bitwise equal
/// across kinds; see DESIGN.md §3).
class sim_engine {
 public:
  sim_engine() = default;
  virtual ~sim_engine() = default;

  /// Executes one interaction.
  virtual void step() = 0;

  /// Executes `steps` interactions. Engines override this when they can
  /// advance faster than step-at-a-time (the batched engine skips runs of
  /// identity interactions in one geometric draw).
  virtual void run(std::uint64_t steps);

  /// Runs until `converged(census())` is true or `max_steps` is reached;
  /// returns the number of interactions executed in this call.
  virtual std::uint64_t run_until(const census_predicate& converged,
                                  std::uint64_t max_steps);

  /// Runs `steps` interactions, recording a census every `snapshot_every`
  /// interactions (including one at the end).
  [[nodiscard]] virtual std::vector<census_snapshot> run_with_snapshots(
      std::uint64_t steps, std::uint64_t snapshot_every);

  /// The current census.
  [[nodiscard]] virtual census_view census() const = 0;

  /// Total interactions executed since construction.
  [[nodiscard]] virtual std::uint64_t interactions() const = 0;

  /// Which backend this is.
  [[nodiscard]] virtual engine_kind kind() const = 0;

  /// The engine's *complete* dynamical state as a versioned, JSON-
  /// serializable snapshot: census or per-agent array, interaction counter,
  /// any cross-run() carry (the multibatch residual round), and the full
  /// 256-bit RNG position. Restoring the snapshot into a fresh engine of
  /// the same kind built from the same spec — in this process or another —
  /// continues the trajectory bit-exactly: a run that passes through
  /// save_state()/restore_state() at a run() boundary is indistinguishable,
  /// draw for draw, from one that does not. Protocol identity and the
  /// initial condition are *not* in the snapshot; pair a snapshot with its
  /// spec via pp/checkpoint.hpp's self-describing checkpoint files.
  [[nodiscard]] virtual json save_state() const = 0;

  /// Restores a snapshot produced by save_state() on an engine of the same
  /// kind and spec. Strict: unknown keys, a foreign engine name, a version
  /// this build does not know, or counts inconsistent with the engine's
  /// population all throw ppg::invariant_error and leave the engine
  /// unmodified only up to the first failed check — treat a throwing
  /// restore as fatal for this engine instance and rebuild it.
  virtual void restore_state(const json& snapshot) = 0;

  [[nodiscard]] std::uint64_t population_size() const {
    return census().population_size();
  }

  /// Parallel time: interactions / n (standard PP normalization).
  [[nodiscard]] double parallel_time() const;

 protected:
  /// The snapshot fields every engine shares, in canonical order:
  /// {"state_version", "engine", "interactions", "rng"}. Engine-specific
  /// fields are appended by the caller.
  [[nodiscard]] json snapshot_envelope(std::uint64_t interactions,
                                       const rng& gen) const;

  /// Validates the shared fields of `snapshot` (version known, engine name
  /// == this kind) and returns the restored interaction counter and RNG.
  struct snapshot_core {
    std::uint64_t interactions = 0;
    rng gen;
  };
  [[nodiscard]] snapshot_core check_snapshot_envelope(
      const json& snapshot) const;

  /// Copy/move are protected: concrete engines stay copyable (simulation is
  /// returned by value), but copying or assigning through a sim_engine&
  /// would slice away the derived state.
  sim_engine(const sim_engine&) = default;
  sim_engine(sim_engine&&) = default;
  sim_engine& operator=(const sim_engine&) = default;
  sim_engine& operator=(sim_engine&&) = default;
};

/// The agent-level engine: a per-agent state array, one protocol::interact
/// call per scheduled pair. This is the reference implementation every other
/// engine is law-equivalent to, and the only engine that supports protocols
/// without a kernel.
class simulation final : public sim_engine {
 public:
  simulation(const protocol& proto, population agents, rng gen,
             pair_sampling sampling = pair_sampling::distinct);

  void step() override;
  void run(std::uint64_t steps) override;

  [[nodiscard]] const population& agents() const { return agents_; }
  [[nodiscard]] census_view census() const override { return {agents_}; }
  [[nodiscard]] std::uint64_t interactions() const override {
    return interactions_;
  }
  [[nodiscard]] engine_kind kind() const override { return engine_kind::agent; }

  /// Snapshot payload: the per-agent state array (the census is derived
  /// from it on restore).
  [[nodiscard]] json save_state() const override;
  void restore_state(const json& snapshot) override;

 private:
  const protocol* proto_;
  population agents_;
  rng gen_;
  pair_sampling sampling_;
  std::uint64_t interactions_ = 0;
};

/// A seedless recipe for a simulation: protocol, initial condition, and
/// sampling discipline. Replica R of a batch is `instantiate(gen_R)` (or
/// `make_engine(kind, gen_R)`) — every replica starts from the identical
/// initial condition and differs only in its RNG stream, which is what the
/// batch engine needs to fan one configuration out across a worker pool.
/// The protocol must outlive the spec and every engine built from it.
///
/// The initial condition may be given per-agent (a population) or as a bare
/// census (counts per state). The census form never allocates per-agent
/// state, so census/batched engines scale to populations far beyond what an
/// agent array can hold; the agent engine materializes agents from the
/// census (grouped by state) on demand.
class sim_spec {
 public:
  sim_spec(const protocol& proto, population initial,
           pair_sampling sampling = pair_sampling::distinct);

  sim_spec(const protocol& proto, std::vector<std::uint64_t> initial_counts,
           pair_sampling sampling = pair_sampling::distinct);

  /// A fresh agent-level simulation at the initial condition. The simulation
  /// is seeded from gen.split(), so it owns an independent stream: the
  /// caller's generator never shares draws with the simulation
  /// (instantiating twice from one generator yields two *different*
  /// trajectories).
  [[nodiscard]] simulation instantiate(rng& gen) const;

  /// A fresh engine of the requested kind at the initial condition, seeded
  /// from gen.split() exactly like instantiate — make_engine(agent, gen) and
  /// instantiate(gen) from equal generator states produce bitwise-identical
  /// trajectories. The census and batched engines require the protocol to
  /// expose a kernel; the batched engine additionally requires
  /// pair_sampling::distinct.
  ///
  /// A non-null `kernel` hands the census-level engines a precompiled
  /// kernel table instead of compiling one from the protocol — the
  /// ppg-serve warm-cache path; it never changes any draw (the table is
  /// immutable shared data) and must match the protocol's canonical form.
  /// The agent engine interprets the protocol directly and rejects a
  /// precompiled kernel.
  [[nodiscard]] std::unique_ptr<sim_engine> make_engine(
      engine_kind kind, rng& gen,
      std::shared_ptr<const kernel_table> kernel = nullptr) const;

  /// The per-agent initial condition; only available when the spec was
  /// constructed from a population.
  [[nodiscard]] const population& initial() const;
  [[nodiscard]] bool has_agent_initial() const { return initial_.has_value(); }

  /// The initial census (always available).
  [[nodiscard]] const std::vector<std::uint64_t>& initial_counts() const {
    return initial_counts_;
  }
  [[nodiscard]] std::uint64_t population_size() const { return n_; }
  [[nodiscard]] std::size_t num_state_kinds() const {
    return initial_counts_.size();
  }

  [[nodiscard]] const protocol& proto() const { return *proto_; }
  [[nodiscard]] pair_sampling sampling() const { return sampling_; }

 private:
  const protocol* proto_;
  std::optional<population> initial_;
  std::vector<std::uint64_t> initial_counts_;
  std::uint64_t n_ = 0;
  pair_sampling sampling_;
};

}  // namespace ppg
