// The uniform simulation-engine interface: every execution backend —
// agent-level loop, census-only sampler, batched geometric-skip sampler —
// exposes the same surface (step / run / run_until / run_with_snapshots /
// census / interactions / parallel_time), so drivers and experiments are
// written once and the backend is a runtime choice (sim_spec::make_engine).
// See DESIGN.md §3 for the engine architecture.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/pp/census.hpp"

namespace ppg {

/// Which execution backend runs a sim_spec.
enum class engine_kind : std::uint8_t {
  agent,    ///< per-agent state array, one protocol::interact per step
  census,   ///< count vector only; samples the ordered *state* pair in O(q)
  batched,  ///< census + geometric batches that skip identity interactions
};

[[nodiscard]] const char* engine_kind_name(engine_kind kind);

/// Interface of a running simulation. All engines implement the exact same
/// interaction law for a given (protocol, initial census, pair_sampling)
/// triple — they differ only in state representation and per-interaction
/// cost, so results are exchangeable at the distribution level (engines
/// consume random draws differently, so trajectories are not bitwise equal
/// across kinds; see DESIGN.md §3).
class sim_engine {
 public:
  sim_engine() = default;
  virtual ~sim_engine() = default;

  /// Executes one interaction.
  virtual void step() = 0;

  /// Executes `steps` interactions. Engines override this when they can
  /// advance faster than step-at-a-time (the batched engine skips runs of
  /// identity interactions in one geometric draw).
  virtual void run(std::uint64_t steps);

  /// Runs until `converged(census())` is true or `max_steps` is reached;
  /// returns the number of interactions executed in this call.
  virtual std::uint64_t run_until(const census_predicate& converged,
                                  std::uint64_t max_steps);

  /// Runs `steps` interactions, recording a census every `snapshot_every`
  /// interactions (including one at the end).
  [[nodiscard]] virtual std::vector<census_snapshot> run_with_snapshots(
      std::uint64_t steps, std::uint64_t snapshot_every);

  /// The current census.
  [[nodiscard]] virtual census_view census() const = 0;

  /// Total interactions executed since construction.
  [[nodiscard]] virtual std::uint64_t interactions() const = 0;

  /// Which backend this is.
  [[nodiscard]] virtual engine_kind kind() const = 0;

  [[nodiscard]] std::uint64_t population_size() const {
    return census().population_size();
  }

  /// Parallel time: interactions / n (standard PP normalization).
  [[nodiscard]] double parallel_time() const;

 protected:
  /// Copy/move are protected: concrete engines stay copyable (simulation is
  /// returned by value), but copying or assigning through a sim_engine&
  /// would slice away the derived state.
  sim_engine(const sim_engine&) = default;
  sim_engine(sim_engine&&) = default;
  sim_engine& operator=(const sim_engine&) = default;
  sim_engine& operator=(sim_engine&&) = default;
};

}  // namespace ppg
