#include "ppg/pp/trace.hpp"

#include <ostream>

#include "ppg/util/error.hpp"

namespace ppg {

census_recorder::census_recorder(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)) {
  PPG_CHECK(!column_names_.empty(), "need at least one census column");
  for (const auto& name : column_names_) {
    PPG_CHECK(name.find(',') == std::string::npos,
              "column names must be CSV-safe");
  }
}

void census_recorder::record(const sim_engine& sim) {
  const census_view now = sim.census();
  record(sim.interactions(), now.population_size(), now.counts());
}

void census_recorder::record(std::uint64_t interactions, std::size_t n,
                             const std::vector<std::uint64_t>& counts) {
  PPG_CHECK(counts.size() == column_names_.size(),
            "census width must match the column names");
  PPG_CHECK(n > 0, "population size must be positive");
  row r;
  r.interactions = interactions;
  r.parallel_time =
      static_cast<double>(interactions) / static_cast<double>(n);
  r.counts = counts;
  rows_.push_back(std::move(r));
}

void census_recorder::write_csv(std::ostream& out) const {
  out << "interactions,parallel_time";
  for (const auto& name : column_names_) {
    out << ',' << name;
  }
  out << '\n';
  for (const auto& r : rows_) {
    out << r.interactions << ',' << r.parallel_time;
    for (const auto c : r.counts) {
      out << ',' << c;
    }
    out << '\n';
  }
}

}  // namespace ppg
