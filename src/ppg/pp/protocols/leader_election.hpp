// Basic pairwise leader election: every agent starts as a leader; when two
// leaders meet, the responder is demoted. A single leader remains after
// Theta(n^2) interactions in expectation (Theta(n) parallel time). Included
// as a substrate demonstration (the paper cites the leader election
// literature as a canonical population-protocol task).
#pragma once

#include "ppg/pp/census.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

class leader_election_protocol final : public protocol {
 public:
  static constexpr agent_state state_leader = 0;
  static constexpr agent_state state_follower = 1;

  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] bool has_kernel() const override { return true; }

  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override;

  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& gen) const override;

  [[nodiscard]] std::string state_name(agent_state state) const override;

  /// Convergence predicate: exactly one leader remains.
  [[nodiscard]] static bool has_unique_leader(const census_view& agents);
};

}  // namespace ppg
