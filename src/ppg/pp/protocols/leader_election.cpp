#include "ppg/pp/protocols/leader_election.hpp"

namespace ppg {

std::pair<agent_state, agent_state> leader_election_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  if (initiator == state_leader && responder == state_leader) {
    return {state_leader, state_follower};
  }
  return {initiator, responder};
}

std::string leader_election_protocol::state_name(agent_state state) const {
  return state == state_leader ? "L" : "F";
}

bool leader_election_protocol::has_unique_leader(const population& agents) {
  return agents.count(state_leader) == 1;
}

}  // namespace ppg
