#include "ppg/pp/protocols/leader_election.hpp"

namespace ppg {

namespace {

std::pair<agent_state, agent_state> transition(agent_state initiator,
                                               agent_state responder) {
  using lep = leader_election_protocol;
  if (initiator == lep::state_leader && responder == lep::state_leader) {
    return {lep::state_leader, lep::state_follower};
  }
  return {initiator, responder};
}

}  // namespace

std::vector<outcome> leader_election_protocol::outcome_distribution(
    agent_state initiator, agent_state responder) const {
  const auto [next_initiator, next_responder] =
      transition(initiator, responder);
  return {{next_initiator, next_responder, 1.0}};
}

std::pair<agent_state, agent_state> leader_election_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  return transition(initiator, responder);
}

std::string leader_election_protocol::state_name(agent_state state) const {
  return state == state_leader ? "L" : "F";
}

bool leader_election_protocol::has_unique_leader(const census_view& agents) {
  return agents.count(state_leader) == 1;
}

}  // namespace ppg
