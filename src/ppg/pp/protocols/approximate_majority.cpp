#include "ppg/pp/protocols/approximate_majority.hpp"

namespace ppg {

std::pair<agent_state, agent_state> approximate_majority_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  if (initiator == state_x && responder == state_y) {
    return {state_x, state_blank};
  }
  if (initiator == state_y && responder == state_x) {
    return {state_y, state_blank};
  }
  if (initiator == state_x && responder == state_blank) {
    return {state_x, state_x};
  }
  if (initiator == state_y && responder == state_blank) {
    return {state_y, state_y};
  }
  return {initiator, responder};
}

std::string approximate_majority_protocol::state_name(
    agent_state state) const {
  switch (state) {
    case state_x:
      return "X";
    case state_y:
      return "Y";
    case state_blank:
      return "B";
    default:
      return protocol::state_name(state);
  }
}

bool approximate_majority_protocol::has_consensus(const population& agents) {
  const auto n = static_cast<std::uint64_t>(agents.size());
  return agents.count(state_x) == n || agents.count(state_y) == n;
}

}  // namespace ppg
