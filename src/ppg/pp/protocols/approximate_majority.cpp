#include "ppg/pp/protocols/approximate_majority.hpp"

namespace ppg {

namespace {

std::pair<agent_state, agent_state> transition(agent_state initiator,
                                               agent_state responder) {
  using amp = approximate_majority_protocol;
  if (initiator == amp::state_x && responder == amp::state_y) {
    return {amp::state_x, amp::state_blank};
  }
  if (initiator == amp::state_y && responder == amp::state_x) {
    return {amp::state_y, amp::state_blank};
  }
  if (initiator == amp::state_x && responder == amp::state_blank) {
    return {amp::state_x, amp::state_x};
  }
  if (initiator == amp::state_y && responder == amp::state_blank) {
    return {amp::state_y, amp::state_y};
  }
  return {initiator, responder};
}

}  // namespace

std::vector<outcome> approximate_majority_protocol::outcome_distribution(
    agent_state initiator, agent_state responder) const {
  const auto [next_initiator, next_responder] =
      transition(initiator, responder);
  return {{next_initiator, next_responder, 1.0}};
}

std::pair<agent_state, agent_state> approximate_majority_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  return transition(initiator, responder);
}

std::string approximate_majority_protocol::state_name(
    agent_state state) const {
  switch (state) {
    case state_x:
      return "X";
    case state_y:
      return "Y";
    case state_blank:
      return "B";
    default:
      return protocol::state_name(state);
  }
}

bool approximate_majority_protocol::has_consensus(const census_view& agents) {
  const std::uint64_t n = agents.population_size();
  return agents.count(state_x) == n || agents.count(state_y) == n;
}

}  // namespace ppg
