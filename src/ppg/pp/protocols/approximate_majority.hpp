// Three-state approximate majority (Angluin, Aspnes, Eisenstat 2008): the
// classic fast consensus dynamics, included as a substrate demonstration of
// the protocol engine and as a reference point for the dynamics literature
// the paper builds on (Section 1.3).
//
// States: X (opinion 0), Y (opinion 1), B (blank). Rules (two-way, applied
// from the initiator's perspective):
//   X + Y -> X + B      (initiator converts the opposing responder to blank)
//   X + B -> X + X      (initiator recruits a blank responder)
//   Y + X -> Y + B
//   Y + B -> Y + Y
#pragma once

#include "ppg/pp/census.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

class approximate_majority_protocol final : public protocol {
 public:
  static constexpr agent_state state_x = 0;
  static constexpr agent_state state_y = 1;
  static constexpr agent_state state_blank = 2;

  [[nodiscard]] std::size_t num_states() const override { return 3; }
  [[nodiscard]] bool has_kernel() const override { return true; }

  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override;

  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& gen) const override;

  [[nodiscard]] std::string state_name(agent_state state) const override;

  /// Convergence predicate: every agent holds the same non-blank opinion.
  [[nodiscard]] static bool has_consensus(const census_view& agents);
};

}  // namespace ppg
