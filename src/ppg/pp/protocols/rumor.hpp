// One-way rumor spreading (push epidemics): an informed initiator informs
// the responder. Expected completion in Theta(n log n) interactions.
// Included as the simplest one-way protocol — the same initiator-only update
// discipline the k-IGT dynamics uses (footnote 3 of the paper).
#pragma once

#include "ppg/pp/census.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

class rumor_protocol final : public protocol {
 public:
  static constexpr agent_state state_susceptible = 0;
  static constexpr agent_state state_informed = 1;

  [[nodiscard]] std::size_t num_states() const override { return 2; }
  [[nodiscard]] bool has_kernel() const override { return true; }

  [[nodiscard]] std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const override;

  [[nodiscard]] std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder,
      rng& gen) const override;

  [[nodiscard]] std::string state_name(agent_state state) const override;

  [[nodiscard]] static bool all_informed(const census_view& agents);
};

}  // namespace ppg
