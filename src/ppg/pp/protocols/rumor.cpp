#include "ppg/pp/protocols/rumor.hpp"

namespace ppg {

std::pair<agent_state, agent_state> rumor_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  if (initiator == state_informed) {
    return {initiator, state_informed};
  }
  return {initiator, responder};
}

std::string rumor_protocol::state_name(agent_state state) const {
  return state == state_informed ? "I" : "S";
}

bool rumor_protocol::all_informed(const population& agents) {
  return agents.count(state_informed) ==
         static_cast<std::uint64_t>(agents.size());
}

}  // namespace ppg
