#include "ppg/pp/protocols/rumor.hpp"

namespace ppg {

namespace {

std::pair<agent_state, agent_state> transition(agent_state initiator,
                                               agent_state responder) {
  if (initiator == rumor_protocol::state_informed) {
    return {initiator, rumor_protocol::state_informed};
  }
  return {initiator, responder};
}

}  // namespace

std::vector<outcome> rumor_protocol::outcome_distribution(
    agent_state initiator, agent_state responder) const {
  const auto [next_initiator, next_responder] =
      transition(initiator, responder);
  return {{next_initiator, next_responder, 1.0}};
}

std::pair<agent_state, agent_state> rumor_protocol::interact(
    agent_state initiator, agent_state responder, rng& /*gen*/) const {
  return transition(initiator, responder);
}

std::string rumor_protocol::state_name(agent_state state) const {
  return state == state_informed ? "I" : "S";
}

bool rumor_protocol::all_informed(const census_view& agents) {
  return agents.count(state_informed) == agents.population_size();
}

}  // namespace ppg
