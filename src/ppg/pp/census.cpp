#include "ppg/pp/census.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

census_view::census_view(const std::vector<std::uint64_t>& counts,
                         std::uint64_t population_size)
    : counts_(&counts), n_(population_size) {
  PPG_CHECK(!counts.empty(), "census needs at least one state kind");
}

census_view::census_view(const population& agents)
    : counts_(&agents.counts()), n_(agents.size()) {}

std::uint64_t census_view::count(agent_state state) const {
  PPG_CHECK(state < counts_->size(), "state out of range");
  return (*counts_)[state];
}

std::vector<double> census_view::fractions() const {
  std::vector<double> out(counts_->size());
  for (std::size_t s = 0; s < counts_->size(); ++s) {
    out[s] = static_cast<double>((*counts_)[s]) / static_cast<double>(n_);
  }
  return out;
}

double census_view::fraction(agent_state state) const {
  return static_cast<double>(count(state)) / static_cast<double>(n_);
}

}  // namespace ppg
