// Precomputed transition-kernel table: the full outcome distribution of a
// protocol, enumerated once over all ordered state pairs and validated
// against the kernel contract (DESIGN.md §2). The census and batched
// engines sample from this table instead of calling protocol::interact, so
// per-interaction work is independent of the population size.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ppg/pp/simulator.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// Flattened, validated kernel of a protocol over its q = num_states()
/// ordered state pairs. Construction checks, for every pair, that outcome
/// states are in range and probabilities are positive and sum to 1 (up to
/// 1e-9); deterministic pairs (a single support point) are sampled without
/// consuming random draws.
class kernel_table {
 public:
  explicit kernel_table(const protocol& proto);

  [[nodiscard]] std::size_t num_states() const { return q_; }

  /// Whether the pair's distribution is a point mass on (initiator,
  /// responder) itself — the interaction can never change any state.
  [[nodiscard]] bool identity(agent_state initiator,
                              agent_state responder) const {
    return identity_[index(initiator, responder)];
  }

  /// Whether the pair's distribution has a single support point.
  [[nodiscard]] bool deterministic(agent_state initiator,
                                   agent_state responder) const;

  /// Whether every pair is deterministic.
  [[nodiscard]] bool fully_deterministic() const {
    return fully_deterministic_;
  }

  /// Samples (q_i', q_r') for the ordered pair; consumes one uniform draw
  /// only when the pair has more than one support point.
  [[nodiscard]] std::pair<agent_state, agent_state> sample(
      agent_state initiator, agent_state responder, rng& gen) const;

 private:
  struct entry {
    agent_state initiator = 0;
    agent_state responder = 0;
    double cumulative = 0.0;  ///< inclusive cumulative probability
  };

  [[nodiscard]] std::size_t index(agent_state initiator,
                                  agent_state responder) const {
    return static_cast<std::size_t>(initiator) * q_ +
           static_cast<std::size_t>(responder);
  }

  std::size_t q_;
  std::vector<std::uint32_t> offsets_;  ///< q_*q_ + 1 entry offsets
  std::vector<entry> entries_;
  std::vector<std::uint8_t> identity_;
  bool fully_deterministic_ = true;
};

}  // namespace ppg
