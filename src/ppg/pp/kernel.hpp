// The protocol abstraction and its transition kernel. A population protocol
// is described once by its state-pair kernel (outcome_distribution); the
// kernel_table below is the flattened, validated form the census and batched
// engines sample from, so per-interaction work is independent of the
// population size. Execution backends live in pp/engine.hpp. See DESIGN.md
// §2 for the kernel contract.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ppg/pp/population.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// One support point of a transition kernel: the post-interaction
/// (initiator, responder) states and their probability.
struct outcome {
  agent_state initiator = 0;
  agent_state responder = 0;
  double probability = 1.0;
};

/// A population protocol: a (possibly randomized) transition function over
/// ordered pairs of states.
///
/// Protocols have two equivalent descriptions and may implement either:
///  - the *kernel view*: outcome_distribution(q_i, q_r) enumerates the finite
///    distribution over post-interaction pairs (override it and has_kernel);
///    interact() then defaults to sampling that distribution, so kernel
///    protocols only write one function;
///  - the *sampling view*: interact(q_i, q_r, gen) draws the post-interaction
///    pair directly. Protocols whose randomness is impractical to enumerate
///    (e.g. igt_action_protocol's repeated-game rollouts) implement only this
///    and are restricted to the agent engine.
/// Deterministic protocols get a fast path for free: a single-support-point
/// distribution is applied without consuming random draws.
class protocol {
 public:
  virtual ~protocol() = default;
  protocol() = default;
  protocol(const protocol&) = default;
  protocol& operator=(const protocol&) = default;

  /// Size of the local state space.
  [[nodiscard]] virtual std::size_t num_states() const = 0;

  /// Whether outcome_distribution is implemented. Engines that execute at
  /// the census level (census, batched) require a kernel.
  [[nodiscard]] virtual bool has_kernel() const { return false; }

  /// The finite distribution over post-interaction (q_i', q_r') pairs for an
  /// ordered (initiator, responder) state pair. Probabilities must be
  /// positive and sum to 1. The default implementation throws; override it
  /// together with has_kernel.
  [[nodiscard]] virtual std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const;

  /// New (initiator, responder) states after an interaction. The default
  /// implementation samples outcome_distribution (consuming one uniform draw
  /// only when the distribution has more than one support point).
  [[nodiscard]] virtual std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder, rng& gen) const;

  /// Human-readable state name (for traces and examples).
  [[nodiscard]] virtual std::string state_name(agent_state state) const;
};

/// Flattened, validated kernel of a protocol over its q = num_states()
/// ordered state pairs. Construction checks, for every pair, that outcome
/// states are in range and probabilities are positive and sum to 1 (up to
/// 1e-9); deterministic pairs (a single support point) are sampled without
/// consuming random draws.
class kernel_table {
 public:
  explicit kernel_table(const protocol& proto);

  [[nodiscard]] std::size_t num_states() const { return q_; }

  /// Whether the pair's distribution is a point mass on (initiator,
  /// responder) itself — the interaction can never change any state.
  [[nodiscard]] bool identity(agent_state initiator,
                              agent_state responder) const {
    return identity_[index(initiator, responder)];
  }

  /// Whether the pair's distribution has a single support point.
  [[nodiscard]] bool deterministic(agent_state initiator,
                                   agent_state responder) const;

  /// Whether every pair is deterministic.
  [[nodiscard]] bool fully_deterministic() const {
    return fully_deterministic_;
  }

  /// Samples (q_i', q_r') for the ordered pair; consumes one uniform draw
  /// only when the pair has more than one support point.
  [[nodiscard]] std::pair<agent_state, agent_state> sample(
      agent_state initiator, agent_state responder, rng& gen) const;

  /// Number of support points of the pair's distribution.
  [[nodiscard]] std::size_t num_outcomes(agent_state initiator,
                                         agent_state responder) const {
    const std::size_t pair = index(initiator, responder);
    return offsets_[pair + 1] - offsets_[pair];
  }

  /// The `k`-th support point of the pair's distribution, with its
  /// (non-cumulative) probability — the enumeration the multibatch engine
  /// draws its per-pair multinomial outcome splits over.
  [[nodiscard]] outcome outcome_at(agent_state initiator,
                                   agent_state responder,
                                   std::size_t k) const;

 private:
  struct entry {
    agent_state initiator = 0;
    agent_state responder = 0;
    double cumulative = 0.0;  ///< inclusive cumulative probability
  };

  [[nodiscard]] std::size_t index(agent_state initiator,
                                  agent_state responder) const {
    return static_cast<std::size_t>(initiator) * q_ +
           static_cast<std::size_t>(responder);
  }

  std::size_t q_;
  std::vector<std::uint32_t> offsets_;  ///< q_*q_ + 1 entry offsets
  std::vector<entry> entries_;
  std::vector<std::uint8_t> identity_;
  bool fully_deterministic_ = true;
};

}  // namespace ppg
