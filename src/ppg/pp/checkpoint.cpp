#include "ppg/pp/checkpoint.hpp"

#include <string>
#include <utility>

#include "ppg/pp/protocol_registry.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

const char* pair_sampling_name(pair_sampling sampling) {
  return sampling == pair_sampling::distinct ? "distinct"
                                             : "with_replacement";
}

pair_sampling pair_sampling_from_name(const std::string& name) {
  if (name == "distinct") return pair_sampling::distinct;
  if (name == "with_replacement") return pair_sampling::with_replacement;
  PPG_CHECK(false, "unknown pair_sampling '" + name + "'");
}

sim_recipe::sim_recipe(std::string protocol_name, json protocol_params,
                       std::vector<std::uint64_t> initial_counts,
                       pair_sampling sampling)
    : name_(std::move(protocol_name)), params_(std::move(protocol_params)) {
  PPG_CHECK(params_.is_object(),
            "sim_recipe: protocol params must be a JSON object");
  proto_ = protocol_registry::global().make(name_, params_);
  spec_.emplace(*proto_, std::move(initial_counts), sampling);
}

sim_recipe sim_recipe::from_json(const json& doc) {
  const char* where = "sim_recipe";
  json_require_keys(doc, {"protocol", "initial_counts", "sampling"}, where);
  const json& proto = json_require(doc, "protocol", where);
  json_require_keys(proto, {"name", "params"}, "sim_recipe protocol");
  return sim_recipe(
      json_require_string(proto, "name", where),
      json_require(proto, "params", where),
      json_require_uint_array(doc, "initial_counts", where),
      pair_sampling_from_name(json_require_string(doc, "sampling", where)));
}

json sim_recipe::to_json() const {
  json doc = json::object();
  json proto = json::object();
  proto["name"] = name_;
  proto["params"] = params_;
  doc["protocol"] = std::move(proto);
  doc["initial_counts"] = json_uint_array(spec_->initial_counts());
  doc["sampling"] = pair_sampling_name(spec_->sampling());
  return doc;
}

std::uint64_t json_fingerprint(const json& doc) {
  // FNV-1a 64 over the canonical compact rendering. FNV is not collision-
  // resistant against adversaries, but the fingerprint only keys a cache of
  // kernels the server compiled itself — a collision costs correctness of
  // nothing the client can observe beyond its own (rejected) recipe.
  const std::string text = doc.dump_string(false);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t recipe_fingerprint(const sim_recipe& recipe) {
  return json_fingerprint(recipe.to_json());
}

json save_checkpoint(const sim_recipe& recipe, const sim_engine& engine) {
  json checkpoint = json::object();
  checkpoint["schema_version"] = checkpoint_schema_version;
  checkpoint["spec"] = recipe.to_json();
  checkpoint["engine"] = engine.save_state();
  return checkpoint;
}

restored_sim restore_checkpoint(const json& checkpoint) {
  return restore_checkpoint(checkpoint, nullptr);
}

restored_sim restore_checkpoint(const json& checkpoint,
                                std::shared_ptr<const kernel_table> kernel) {
  const char* where = "checkpoint";
  json_require_keys(checkpoint, {"schema_version", "spec", "engine"}, where);
  const std::uint64_t version =
      json_require_uint(checkpoint, "schema_version", where);
  PPG_CHECK(version == checkpoint_schema_version,
            "checkpoint: unsupported schema_version " +
                std::to_string(version) + " (this build reads " +
                std::to_string(checkpoint_schema_version) + ")");
  sim_recipe recipe = sim_recipe::from_json(json_require(checkpoint, "spec",
                                                         where));
  const json& snapshot = json_require(checkpoint, "engine", where);
  const engine_kind kind = engine_kind_from_name(
      json_require_string(snapshot, "engine", "engine snapshot"));
  if (kind == engine_kind::agent) kernel = nullptr;
  // The seed is irrelevant: restore_state overwrites the engine's whole
  // dynamical state, RNG position included.
  rng scratch(0);
  auto engine = recipe.spec().make_engine(kind, scratch, std::move(kernel));
  engine->restore_state(snapshot);
  return {std::move(recipe), std::move(engine)};
}

}  // namespace ppg
