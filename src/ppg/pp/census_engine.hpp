// The census engine: simulation state is the per-state count vector only —
// no per-agent array — so memory and per-step cost are O(q) in the number of
// protocol states and independent of the population size n. Each step
// samples an ordered *state* pair directly from the counts, in exactly the
// law induced by the requested pair_sampling discipline over agents, then
// samples the kernel outcome and updates four counts. This unlocks
// populations in the hundreds of millions of agents (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

class census_engine final : public sim_engine {
 public:
  /// `initial_counts[s]` is the number of agents starting in state s; its
  /// length is the census width (may exceed the protocol's state count, but
  /// states outside the protocol's space must be empty). The protocol must
  /// expose a kernel and must outlive the engine.
  /// When `kernel` is non-null the engine uses that precompiled table
  /// instead of compiling its own — the ppg-serve warm-cache path; it must
  /// have been compiled from a protocol with the same canonical form (the
  /// constructor checks the state-space size, the caller owns semantic
  /// equality). Null compiles from `proto` as before.
  census_engine(const protocol& proto,
                std::vector<std::uint64_t> initial_counts, rng gen,
                pair_sampling sampling = pair_sampling::distinct,
                              std::shared_ptr<const kernel_table> kernel = nullptr);

  void step() override;
  void run(std::uint64_t steps) override;

  [[nodiscard]] census_view census() const override { return {counts_, n_}; }
  [[nodiscard]] std::uint64_t interactions() const override {
    return interactions_;
  }
  [[nodiscard]] engine_kind kind() const override {
    return engine_kind::census;
  }

  /// Snapshot payload: the count vector (the engine's whole state beyond
  /// the shared envelope).
  [[nodiscard]] json save_state() const override;
  void restore_state(const json& snapshot) override;

 private:
  /// The state holding the `target`-th agent (0-indexed) when agents are
  /// ordered by state; `excluded` removes one agent of that state first
  /// (agent_state(-1) removes none).
  [[nodiscard]] agent_state locate(std::uint64_t target,
                                   agent_state excluded) const;

  std::shared_ptr<const kernel_table> kernel_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_;
  rng gen_;
  pair_sampling sampling_;
  std::uint64_t interactions_ = 0;
};

}  // namespace ppg
