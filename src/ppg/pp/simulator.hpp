// The population protocol simulator: repeatedly schedules a random ordered
// pair and applies a protocol's transition function. Supports convergence
// predicates, periodic census snapshots, and both pair-sampling disciplines.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ppg/pp/population.hpp"
#include "ppg/pp/scheduler.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// A population protocol: a transition function over pairs of states.
/// Protocols may be randomized (they receive the simulation's generator).
/// One-way protocols simply return the responder's state unchanged.
class protocol {
 public:
  virtual ~protocol() = default;
  protocol() = default;
  protocol(const protocol&) = default;
  protocol& operator=(const protocol&) = default;

  /// Size of the local state space.
  [[nodiscard]] virtual std::size_t num_states() const = 0;

  /// New (initiator, responder) states after an interaction.
  [[nodiscard]] virtual std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder, rng& gen) const = 0;

  /// Human-readable state name (for traces and examples).
  [[nodiscard]] virtual std::string state_name(agent_state state) const;
};

/// How the scheduler draws the interacting pair.
enum class pair_sampling : std::uint8_t {
  distinct,          ///< ordered pair of distinct agents (standard PP model)
  with_replacement,  ///< independent draws (paper's idealized probabilities)
};

/// One census snapshot taken during a run.
struct census_snapshot {
  std::uint64_t interactions = 0;
  std::vector<std::uint64_t> counts;
};

class simulation {
 public:
  simulation(const protocol& proto, population agents, rng gen,
             pair_sampling sampling = pair_sampling::distinct);

  /// Executes one interaction.
  void step();

  /// Executes `steps` interactions.
  void run(std::uint64_t steps);

  /// Runs until `converged(population)` is true or `max_steps` is reached;
  /// returns the number of interactions executed in this call.
  std::uint64_t run_until(
      const std::function<bool(const population&)>& converged,
      std::uint64_t max_steps);

  /// Runs `steps` interactions, recording a census every `snapshot_every`
  /// interactions (including one at the end).
  [[nodiscard]] std::vector<census_snapshot> run_with_snapshots(
      std::uint64_t steps, std::uint64_t snapshot_every);

  [[nodiscard]] const population& agents() const { return agents_; }
  [[nodiscard]] std::uint64_t interactions() const { return interactions_; }

  /// Parallel time: interactions / n (standard PP normalization).
  [[nodiscard]] double parallel_time() const;

 private:
  const protocol* proto_;
  population agents_;
  rng gen_;
  pair_sampling sampling_;
  std::uint64_t interactions_ = 0;
};

/// A seedless recipe for a simulation: protocol, initial population, and
/// sampling discipline. Replica R of a batch is `instantiate(gen_R)` — every
/// replica starts from the identical initial condition and differs only in
/// its RNG stream, which is what the batch engine needs to fan one
/// configuration out across a worker pool. The protocol must outlive the
/// spec and every simulation built from it.
class sim_spec {
 public:
  sim_spec(const protocol& proto, population initial,
           pair_sampling sampling = pair_sampling::distinct);

  /// A fresh simulation at the initial condition. The simulation is seeded
  /// from gen.split(), so it owns an independent stream: the caller's
  /// generator never shares draws with the simulation (instantiating twice
  /// from one generator yields two *different* trajectories).
  [[nodiscard]] simulation instantiate(rng& gen) const;

  [[nodiscard]] const population& initial() const { return initial_; }
  [[nodiscard]] const protocol& proto() const { return *proto_; }
  [[nodiscard]] pair_sampling sampling() const { return sampling_; }

 private:
  const protocol* proto_;
  population initial_;
  pair_sampling sampling_;
};

}  // namespace ppg
