// The population protocol simulation API. A protocol is described once by
// its state-pair transition kernel (outcome_distribution), and interchangeable
// engines execute it: the agent-level loop below (class simulation), plus the
// census and batched engines selected through sim_spec::make_engine. See
// DESIGN.md §2-§3 for the kernel contract and the engine architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/population.hpp"
#include "ppg/pp/scheduler.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// One support point of a transition kernel: the post-interaction
/// (initiator, responder) states and their probability.
struct outcome {
  agent_state initiator = 0;
  agent_state responder = 0;
  double probability = 1.0;
};

/// A population protocol: a (possibly randomized) transition function over
/// ordered pairs of states.
///
/// Protocols have two equivalent descriptions and may implement either:
///  - the *kernel view*: outcome_distribution(q_i, q_r) enumerates the finite
///    distribution over post-interaction pairs (override it and has_kernel);
///    interact() then defaults to sampling that distribution, so kernel
///    protocols only write one function;
///  - the *sampling view*: interact(q_i, q_r, gen) draws the post-interaction
///    pair directly. Protocols whose randomness is impractical to enumerate
///    (e.g. igt_action_protocol's repeated-game rollouts) implement only this
///    and are restricted to the agent engine.
/// Deterministic protocols get a fast path for free: a single-support-point
/// distribution is applied without consuming random draws.
class protocol {
 public:
  virtual ~protocol() = default;
  protocol() = default;
  protocol(const protocol&) = default;
  protocol& operator=(const protocol&) = default;

  /// Size of the local state space.
  [[nodiscard]] virtual std::size_t num_states() const = 0;

  /// Whether outcome_distribution is implemented. Engines that execute at
  /// the census level (census, batched) require a kernel.
  [[nodiscard]] virtual bool has_kernel() const { return false; }

  /// The finite distribution over post-interaction (q_i', q_r') pairs for an
  /// ordered (initiator, responder) state pair. Probabilities must be
  /// positive and sum to 1. The default implementation throws; override it
  /// together with has_kernel.
  [[nodiscard]] virtual std::vector<outcome> outcome_distribution(
      agent_state initiator, agent_state responder) const;

  /// New (initiator, responder) states after an interaction. The default
  /// implementation samples outcome_distribution (consuming one uniform draw
  /// only when the distribution has more than one support point).
  [[nodiscard]] virtual std::pair<agent_state, agent_state> interact(
      agent_state initiator, agent_state responder, rng& gen) const;

  /// Human-readable state name (for traces and examples).
  [[nodiscard]] virtual std::string state_name(agent_state state) const;
};

/// The agent-level engine: a per-agent state array, one protocol::interact
/// call per scheduled pair. This is the reference implementation every other
/// engine is law-equivalent to, and the only engine that supports protocols
/// without a kernel.
class simulation final : public sim_engine {
 public:
  simulation(const protocol& proto, population agents, rng gen,
             pair_sampling sampling = pair_sampling::distinct);

  void step() override;
  void run(std::uint64_t steps) override;

  using sim_engine::run_until;

  /// Deprecated shim for population-based convergence predicates; new code
  /// should use run_until with a census_predicate (available on every
  /// engine). Only the agent engine can evaluate population-based
  /// predicates, so this shim has no equivalent on the interface.
  std::uint64_t run_until_agents(
      const std::function<bool(const population&)>& converged,
      std::uint64_t max_steps);

  [[nodiscard]] const population& agents() const { return agents_; }
  [[nodiscard]] census_view census() const override { return {agents_}; }
  [[nodiscard]] std::uint64_t interactions() const override {
    return interactions_;
  }
  [[nodiscard]] engine_kind kind() const override { return engine_kind::agent; }

 private:
  const protocol* proto_;
  population agents_;
  rng gen_;
  pair_sampling sampling_;
  std::uint64_t interactions_ = 0;
};

/// A seedless recipe for a simulation: protocol, initial condition, and
/// sampling discipline. Replica R of a batch is `instantiate(gen_R)` (or
/// `make_engine(kind, gen_R)`) — every replica starts from the identical
/// initial condition and differs only in its RNG stream, which is what the
/// batch engine needs to fan one configuration out across a worker pool.
/// The protocol must outlive the spec and every engine built from it.
///
/// The initial condition may be given per-agent (a population) or as a bare
/// census (counts per state). The census form never allocates per-agent
/// state, so census/batched engines scale to populations far beyond what an
/// agent array can hold; the agent engine materializes agents from the
/// census (grouped by state) on demand.
class sim_spec {
 public:
  sim_spec(const protocol& proto, population initial,
           pair_sampling sampling = pair_sampling::distinct);

  sim_spec(const protocol& proto, std::vector<std::uint64_t> initial_counts,
           pair_sampling sampling = pair_sampling::distinct);

  /// A fresh agent-level simulation at the initial condition. The simulation
  /// is seeded from gen.split(), so it owns an independent stream: the
  /// caller's generator never shares draws with the simulation
  /// (instantiating twice from one generator yields two *different*
  /// trajectories).
  [[nodiscard]] simulation instantiate(rng& gen) const;

  /// A fresh engine of the requested kind at the initial condition, seeded
  /// from gen.split() exactly like instantiate — make_engine(agent, gen) and
  /// instantiate(gen) from equal generator states produce bitwise-identical
  /// trajectories. The census and batched engines require the protocol to
  /// expose a kernel; the batched engine additionally requires
  /// pair_sampling::distinct.
  [[nodiscard]] std::unique_ptr<sim_engine> make_engine(engine_kind kind,
                                                        rng& gen) const;

  /// The per-agent initial condition; only available when the spec was
  /// constructed from a population.
  [[nodiscard]] const population& initial() const;
  [[nodiscard]] bool has_agent_initial() const { return initial_.has_value(); }

  /// The initial census (always available).
  [[nodiscard]] const std::vector<std::uint64_t>& initial_counts() const {
    return initial_counts_;
  }
  [[nodiscard]] std::uint64_t population_size() const { return n_; }
  [[nodiscard]] std::size_t num_state_kinds() const {
    return initial_counts_.size();
  }

  [[nodiscard]] const protocol& proto() const { return *proto_; }
  [[nodiscard]] pair_sampling sampling() const { return sampling_; }

 private:
  const protocol* proto_;
  std::optional<population> initial_;
  std::vector<std::uint64_t> initial_counts_;
  std::uint64_t n_ = 0;
  pair_sampling sampling_;
};

}  // namespace ppg
