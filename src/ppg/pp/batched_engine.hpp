// The batched engine: census-level execution that advances through runs of
// *identity* interactions — ordered state pairs whose kernel is a point mass
// on the pair itself, so they can never change any state — in a single
// geometric draw, instead of sampling them one by one. Between two census
// changes the census is constant, hence the number of identity interactions
// before the next non-identity one is Geometric(p) with p the current
// probability mass of non-identity pairs; geometric memorylessness makes
// truncating a batch at a step budget lawful. For kernels whose interactions
// are mostly no-ops — e.g. the one-way k-IGT dynamics, where any interaction
// whose initiator is AC or AD is an identity — this executes far less than
// one sampling operation per interaction (DESIGN.md §3).
//
// Non-identity mass is tracked in row-collapsed form: for each initiator
// state u, S_u is the (static, kernel-derived) set of responder states v
// with a non-identity pair (u, v), and R_u = sum of counts over S_u is
// maintained incrementally as counts change; the total non-identity weight
// is itself maintained by the same add_count pass (a single delta
// expansion of the row products), so a batch costs O(1) beyond the four
// count updates of its census change.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/engine.hpp"
#include "ppg/pp/kernel.hpp"

namespace ppg {

class batched_engine final : public sim_engine {
 public:
  /// Same contract as census_engine, but restricted to
  /// pair_sampling::distinct (the standard PP scheduler). Population sizes
  /// up to ~3e9 are supported: pair weights c_u * c_v must fit in 64 bits.
  /// When `kernel` is non-null the engine uses that precompiled table
  /// instead of compiling its own — the ppg-serve warm-cache path; it must
  /// have been compiled from a protocol with the same canonical form (the
  /// constructor checks the state-space size, the caller owns semantic
  /// equality). Null compiles from `proto` as before.
  batched_engine(const protocol& proto,
                 std::vector<std::uint64_t> initial_counts, rng gen,
                 pair_sampling sampling = pair_sampling::distinct,
                               std::shared_ptr<const kernel_table> kernel = nullptr);

  void step() override;
  void run(std::uint64_t steps) override;
  std::uint64_t run_until(const census_predicate& converged,
                          std::uint64_t max_steps) override;

  [[nodiscard]] census_view census() const override { return {counts_, n_}; }
  [[nodiscard]] std::uint64_t interactions() const override {
    return interactions_;
  }
  [[nodiscard]] engine_kind kind() const override {
    return engine_kind::batched;
  }

  /// Number of batches advanced so far: one geometric draw (plus at most
  /// one non-identity interaction) each. The engine's seed-deterministic
  /// work metric — on dense kernels it approaches interactions().
  [[nodiscard]] std::uint64_t batches() const { return batches_; }

  /// Snapshot payload: counts, the batch counter, and the incrementally
  /// maintained non-identity mass. restore_state re-derives the mass from
  /// the restored counts and cross-checks it against the stored value, so a
  /// checkpoint whose census and mass disagree is rejected instead of
  /// silently corrupting the geometric batch law.
  [[nodiscard]] json save_state() const override;
  void restore_state(const json& snapshot) override;

 private:
  /// Recomputes the responder sums R_u and the total non-identity mass from
  /// counts_ (construction and restore; every other update is incremental).
  void rebuild_row_sums();

  /// Number of ordered agent pairs realizing initiator row u: the weight of
  /// row u is c_u * (R_u - [u in S_u]).
  [[nodiscard]] std::uint64_t row_weight(std::size_t row) const;

  /// Samples and applies one non-identity interaction (conditional on the
  /// current step being one); `active` is the precomputed active_weight().
  void apply_active(std::uint64_t active);

  /// Advances by one batch — the geometric run of identity interactions
  /// plus, if it falls inside `budget`, the next census change — and
  /// returns the interactions consumed (always in (0, budget]). A frozen
  /// census (no non-identity mass) consumes the whole budget.
  [[nodiscard]] std::uint64_t advance_batch(std::uint64_t budget);

  /// Count update that maintains the row responder sums R_u and the total
  /// non-identity weight active_weight_.
  void add_count(agent_state state, std::int64_t delta);

  std::shared_ptr<const kernel_table> kernel_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_;
  rng gen_;
  std::uint64_t interactions_ = 0;
  std::uint64_t batches_ = 0;
  /// Initiator states with at least one non-identity pair.
  std::vector<agent_state> active_rows_;
  /// q*q flags: responder_in_row_[u*q + v] iff (u, v) is non-identity.
  std::vector<std::uint8_t> responder_in_row_;
  /// Flags active initiator rows (the states listed in active_rows_).
  std::vector<std::uint8_t> is_active_row_;
  /// For each state w, the initiator rows u with w in S_u.
  std::vector<std::vector<agent_state>> rows_with_responder_;
  /// R_u = sum of counts over S_u, maintained incrementally.
  std::vector<std::uint64_t> row_responder_sum_;
  /// Total weight of non-identity pairs, maintained incrementally by
  /// add_count; the next census change is interaction
  /// Geometric(active_weight_ / (n(n-1))) + 1 from now.
  std::uint64_t active_weight_ = 0;
};

}  // namespace ppg
