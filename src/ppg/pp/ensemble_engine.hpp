// The SoA ensemble engine: R multibatch replicas of one recipe advanced in
// lockstep over structure-of-arrays planes (one flat R x width array per
// pool instead of R separate engines), sharing a single compiled kernel and
// a single tabulated birthday sampler across the whole ensemble — the
// O(sqrt(n)) log-survival table and the kernel's flattened outcome lists
// are built once, not once per replica, and the planes keep the per-round
// working set contiguous when thousands of replicas advance together.
//
// Determinism contract (the batch_runner law, DESIGN.md §11): replica r
// draws from make_stream_rng(master_seed, r).split() — exactly the
// generator sim_spec::make_engine hands a multibatch engine inside
// batch_runner replica r — so replica r's trajectory is *bitwise identical*
// to the solo multibatch engine's under the same run() chunk schedule,
// at any thread count. Threads parallelize across replicas (each owns its
// stream and its plane slices); results never depend on how many there are.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/kernel.hpp"
#include "ppg/pp/multibatch_round.hpp"
#include "ppg/pp/scheduler.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {

class ensemble_engine {
 public:
  /// Same recipe contract as the multibatch engine (kernel-bearing
  /// protocol, pair_sampling::distinct, n <= 3e9), fanned out to
  /// `replicas` independent streams of `master_seed`. A non-null `kernel`
  /// reuses a precompiled table (the warm-cache path).
  ensemble_engine(const protocol& proto,
                  const std::vector<std::uint64_t>& initial_counts,
                  std::uint64_t master_seed, std::size_t replicas,
                  pair_sampling sampling = pair_sampling::distinct,
                  std::shared_ptr<const kernel_table> kernel = nullptr);

  /// Advances every replica by `steps` interactions. One call is one chunk
  /// of every replica's schedule: run(a) then run(b) equals the solo
  /// engine's run(a); run(b), not its run(a+b) (the multibatch
  /// sequential/aggregate path choice depends on the chunk boundary).
  void run(std::uint64_t steps);

  /// One interaction per replica.
  void step() { run(1); }

  [[nodiscard]] std::size_t replicas() const { return replicas_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::uint64_t population_size() const { return n_; }
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

  /// Replica r's census: a view into the SoA plane (valid until the next
  /// run()), and a copying form for census_view-based consumers.
  [[nodiscard]] const std::uint64_t* replica_counts(std::size_t r) const {
    return counts_.data() + r * width_;
  }
  [[nodiscard]] std::vector<std::uint64_t> replica_census(std::size_t r) const;

  /// Per-replica and ensemble-total interaction counters (every replica
  /// advances in lockstep, so per-replica counts are equal after run()).
  [[nodiscard]] std::uint64_t interactions(std::size_t r) const {
    return interactions_[r];
  }
  [[nodiscard]] std::uint64_t total_interactions() const;

  /// Summed multibatch work counters across the ensemble — the
  /// seed-deterministic metrics the bench gate pins.
  [[nodiscard]] std::uint64_t total_rounds() const;
  [[nodiscard]] std::uint64_t total_collisions() const;

  /// Mean census fractions across replicas (ensemble-averaged census).
  [[nodiscard]] std::vector<double> mean_fractions() const;

  /// Worker threads advancing replicas; <= 1 (the default) runs them on
  /// the calling thread. Bit-identical at every setting.
  void set_threads(std::size_t threads);
  [[nodiscard]] std::size_t threads() const {
    return pool_ ? pool_->size() : 1;
  }

  /// Ensemble snapshot: {"state_version", "engine": "multibatch-ensemble",
  /// "master_seed", "replicas": [...]}, where each replicas[r] is exactly
  /// the solo multibatch engine's v1 snapshot of replica r — the per-
  /// replica schema is shared, not parallel (pp/multibatch_engine.hpp's
  /// multibatch_snapshot), so a replica entry restores into a solo engine
  /// and vice versa. Thread count is not persisted (it is an execution
  /// setting, not state).
  [[nodiscard]] json save_state() const;

  /// Restores a save_state() snapshot: exact key set, matching replica
  /// count and recipe shape (width, population, state space), and every
  /// per-replica invariant the solo engine enforces. The restored RNG
  /// positions win over the constructor seeding, exactly as in the solo
  /// engines.
  void restore_state(const json& snapshot);

 private:
  std::shared_ptr<const kernel_table> kernel_;
  std::size_t replicas_;
  std::size_t width_;
  std::uint64_t n_ = 0;
  std::uint64_t master_seed_;
  // SoA planes: replica r owns [r * width_, (r+1) * width_).
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> untouched_;
  std::vector<std::uint64_t> touched_;
  // Per-replica scalars (indexed by replica).
  std::vector<std::uint64_t> untouched_total_;
  std::vector<std::uint64_t> interactions_;
  std::vector<std::uint64_t> rounds_;
  std::vector<std::uint64_t> collisions_;
  std::vector<std::uint64_t> pending_free_;
  std::vector<std::uint8_t> collision_pending_;  ///< not vector<bool>: raced
  std::vector<rng> gens_;
  multibatch_executor executor_;
  std::unique_ptr<thread_pool> pool_;
};

}  // namespace ppg
