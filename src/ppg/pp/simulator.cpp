#include "ppg/pp/simulator.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

std::string protocol::state_name(agent_state state) const {
  return "s" + std::to_string(state);
}

simulation::simulation(const protocol& proto, population agents, rng gen,
                       pair_sampling sampling)
    : proto_(&proto),
      agents_(std::move(agents)),
      gen_(gen),
      sampling_(sampling) {
  PPG_CHECK(agents_.num_state_kinds() >= proto_->num_states(),
            "population state space smaller than the protocol's");
  PPG_CHECK(agents_.size() >= 2, "a protocol needs at least two agents");
}

void simulation::step() {
  const interaction pair =
      sampling_ == pair_sampling::distinct
          ? sample_distinct_pair(agents_.size(), gen_)
          : sample_with_replacement_pair(agents_.size(), gen_);
  const auto [next_initiator, next_responder] =
      proto_->interact(agents_.state_of(pair.initiator),
                       agents_.state_of(pair.responder), gen_);
  agents_.set_state(pair.initiator, next_initiator);
  // Self-interactions can occur under with_replacement sampling; applying
  // the responder update second would clobber the initiator's, so skip it.
  if (pair.responder != pair.initiator) {
    agents_.set_state(pair.responder, next_responder);
  }
  ++interactions_;
}

void simulation::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
  }
}

std::uint64_t simulation::run_until(
    const std::function<bool(const population&)>& converged,
    std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && !converged(agents_)) {
    step();
    ++executed;
  }
  return executed;
}

std::vector<census_snapshot> simulation::run_with_snapshots(
    std::uint64_t steps, std::uint64_t snapshot_every) {
  PPG_CHECK(snapshot_every > 0, "snapshot interval must be positive");
  std::vector<census_snapshot> snapshots;
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
    if ((i + 1) % snapshot_every == 0 || i + 1 == steps) {
      snapshots.push_back({interactions_, agents_.counts()});
    }
  }
  return snapshots;
}

double simulation::parallel_time() const {
  return static_cast<double>(interactions_) /
         static_cast<double>(agents_.size());
}

sim_spec::sim_spec(const protocol& proto, population initial,
                   pair_sampling sampling)
    : proto_(&proto), initial_(std::move(initial)), sampling_(sampling) {
  PPG_CHECK(initial_.num_state_kinds() >= proto_->num_states(),
            "population state space smaller than the protocol's");
  PPG_CHECK(initial_.size() >= 2, "a protocol needs at least two agents");
}

simulation sim_spec::instantiate(rng& gen) const {
  return simulation(*proto_, initial_, gen.split(), sampling_);
}

}  // namespace ppg
