#include "ppg/pp/census_engine.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

namespace {
constexpr agent_state no_excluded_state = static_cast<agent_state>(-1);
}  // namespace

census_engine::census_engine(const protocol& proto,
                             std::vector<std::uint64_t> initial_counts,
                             rng gen, pair_sampling sampling,
                             std::shared_ptr<const kernel_table> kernel)
    : kernel_(kernel ? std::move(kernel)
                       : std::make_shared<const kernel_table>(proto)),
      counts_(std::move(initial_counts)),
      n_(0),
      gen_(gen),
      sampling_(sampling) {
  PPG_CHECK(kernel_->num_states() == proto.num_states(),
            "census engine: precompiled kernel does not match the protocol");
  PPG_CHECK(counts_.size() >= kernel_->num_states(),
            "census state space smaller than the protocol's");
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts_[s] == 0,
              "census engine: agents in states outside the protocol's space");
    n_ += counts_[s];
  }
  PPG_CHECK(n_ >= 2, "a protocol needs at least two agents");
}

agent_state census_engine::locate(std::uint64_t target,
                                  agent_state excluded) const {
  const std::size_t q = kernel_->num_states();
  for (std::size_t s = 0; s < q; ++s) {
    const std::uint64_t c = counts_[s] - (s == excluded ? 1u : 0u);
    if (target < c) return static_cast<agent_state>(s);
    target -= c;
  }
  PPG_CHECK(false, "census sampling target out of range");
}

void census_engine::step() {
  if (sampling_ == pair_sampling::with_replacement &&
      gen_.next_below(n_) == 0) {
    // A self-interaction (probability 1/n): the ordered pair lands on one
    // agent twice; only the initiator update applies, mirroring the agent
    // engine's self-pair handling.
    const agent_state u = locate(gen_.next_below(n_), no_excluded_state);
    const auto [next_initiator, next_responder] = kernel_->sample(u, u, gen_);
    (void)next_responder;
    --counts_[u];
    ++counts_[next_initiator];
    ++interactions_;
    return;
  }
  // Ordered pair of distinct agents: initiator state u with probability
  // c_u / n, then responder state v with probability (c_v - [v==u]) / (n-1)
  // — the census marginal of a uniform ordered agent pair.
  const agent_state u = locate(gen_.next_below(n_), no_excluded_state);
  const agent_state v = locate(gen_.next_below(n_ - 1), u);
  const auto [next_initiator, next_responder] = kernel_->sample(u, v, gen_);
  --counts_[u];
  --counts_[v];
  ++counts_[next_initiator];
  ++counts_[next_responder];
  ++interactions_;
}

json census_engine::save_state() const {
  json snapshot = snapshot_envelope(interactions_, gen_);
  snapshot["counts"] = json_uint_array(counts_);
  return snapshot;
}

void census_engine::restore_state(const json& snapshot) {
  json_require_keys(
      snapshot, {"state_version", "engine", "interactions", "rng", "counts"},
      "census snapshot");
  const auto core = check_snapshot_envelope(snapshot);
  const auto counts =
      json_require_uint_array(snapshot, "counts", "census snapshot");
  PPG_CHECK(counts.size() == counts_.size(),
            "census snapshot: state-space width mismatch");
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    PPG_CHECK(s < kernel_->num_states() || counts[s] == 0,
              "census snapshot: agents in states outside the protocol's "
              "space");
    total += counts[s];
  }
  PPG_CHECK(total == n_, "census snapshot: population size mismatch");
  counts_ = counts;
  interactions_ = core.interactions;
  gen_ = core.gen;
}

// Identical loop to the sim_engine default, but compiled against the final
// class: step() dispatches statically here, which is worth ~15% on the
// per-interaction hot path (the base-class loop pays a virtual call per
// step).
void census_engine::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) {
    step();
  }
}

}  // namespace ppg
