// The warm kernel cache: one compiled kernel_table per distinct protocol,
// shared (immutably) by every session that names it. Keyed by
// json_fingerprint of the protocol's canonical JSON subdocument — sessions
// that differ only in initial census, sampling, or seed hit the same entry,
// so the second session on a protocol skips kernel compilation entirely.
// Sharing is safe because a kernel_table is self-contained after
// construction (no protocol pointer retained) and never mutated by
// sampling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "ppg/pp/kernel.hpp"

namespace ppg {

class kernel_cache {
 public:
  struct lookup {
    std::shared_ptr<const kernel_table> kernel;
    bool hit = false;  ///< true when the kernel was already cached
  };

  /// Returns the cached kernel for `key`, compiling one from `proto` on the
  /// first request. Compilation happens under the cache lock: two sessions
  /// racing on a cold key compile once, and the loser reports a hit.
  /// `proto` must have a kernel (protocols without one never reach the
  /// census-level engines this cache feeds).
  [[nodiscard]] lookup get_or_compile(std::uint64_t key,
                                      const protocol& proto);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const kernel_table>> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ppg
