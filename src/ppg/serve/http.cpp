#include "ppg/serve/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace ppg {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* http_request::header(std::string_view name) const {
  const std::string lowered = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) return &value;
  }
  return nullptr;
}

bool http_request::keep_alive() const {
  const std::string* connection = header("connection");
  return connection == nullptr || to_lower(*connection) != "close";
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Status";
  }
}

http_connection::~http_connection() {
  if (fd_ >= 0) ::close(fd_);
}

http_connection::fill_status http_connection::fill() {
  char chunk[4096];
  for (;;) {
    if (limits_.read_timeout_ms > 0) {
      pollfd waiter{};
      waiter.fd = fd_;
      waiter.events = POLLIN;
      const int ready = ::poll(&waiter, 1, limits_.read_timeout_ms);
      if (ready == 0) return fill_status::timed_out;
      if (ready < 0) {
        if (errno == EINTR) continue;
        return fill_status::eof;
      }
    }
    std::size_t want = sizeof(chunk);
    if (faults_ != nullptr) {
      switch (faults_->next("socket.read")) {
        case fault_action::fail_eio:
        case fault_action::fail_enospc:
          return fill_status::eof;  // injected: the peer vanished mid-read
        case fault_action::short_op:
          want = faults_->short_size(want);
          break;
        default:
          break;
      }
    }
    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      return fill_status::data;
    }
    if (got == 0) return fill_status::eof;  // orderly EOF
    if (errno == EINTR) continue;
    return fill_status::eof;  // socket error: treat as gone, nothing to answer
  }
}

std::optional<http_request> http_connection::read_request() {
  // Head: everything up to the blank line, capped at max_header_bytes.
  std::size_t head_end = std::string::npos;
  for (;;) {
    head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer_.size() > limits_.max_header_bytes) {
      throw http_error(431, "request head exceeds " +
                                std::to_string(limits_.max_header_bytes) +
                                " bytes");
    }
    switch (fill()) {
      case fill_status::data:
        break;
      case fill_status::eof:
        if (buffer_.empty()) {
          return std::nullopt;  // clean EOF between requests
        }
        throw http_error(400, "connection closed mid-request");
      case fill_status::timed_out:
        if (buffer_.empty()) {
          // Idle past the deadline with no request in flight: reap the
          // connection silently (a slowloris peer never pins a worker).
          return std::nullopt;
        }
        throw http_error(408, "read deadline exceeded mid-request");
    }
  }
  if (head_end > limits_.max_header_bytes) {
    throw http_error(431, "request head exceeds " +
                              std::to_string(limits_.max_header_bytes) +
                              " bytes");
  }

  http_request request;
  const std::string_view head(buffer_.data(), head_end);

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    throw http_error(400, "malformed request line");
  }
  request.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = trim(line.substr(sp2 + 1));
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw http_error(505, "unsupported version '" + std::string(version) +
                              "'");
  }
  if (target.empty() || target[0] != '/') {
    throw http_error(400, "request target must be an absolute path");
  }
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  request.target = std::string(target);

  // Header fields.
  std::size_t pos = line.size() + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      throw http_error(400, "malformed header field");
    }
    request.headers.emplace_back(to_lower(field.substr(0, colon)),
                                 std::string(trim(field.substr(colon + 1))));
  }

  if (request.header("transfer-encoding") != nullptr) {
    throw http_error(501, "transfer-encoding is not supported; send a "
                          "Content-Length body");
  }

  // Body: exactly Content-Length bytes, bounded before buffering.
  std::size_t body_size = 0;
  if (const std::string* length = request.header("content-length")) {
    if (length->empty() ||
        length->find_first_not_of("0123456789") != std::string::npos) {
      throw http_error(400, "malformed Content-Length");
    }
    errno = 0;
    const unsigned long long parsed = std::strtoull(length->c_str(),
                                                    nullptr, 10);
    if (errno != 0 || parsed > limits_.max_body_bytes) {
      throw http_error(413, "request body exceeds " +
                                std::to_string(limits_.max_body_bytes) +
                                " bytes");
    }
    body_size = static_cast<std::size_t>(parsed);
  }
  buffer_.erase(0, head_end + 4);
  while (buffer_.size() < body_size) {
    switch (fill()) {
      case fill_status::data:
        break;
      case fill_status::eof:
        throw http_error(400, "connection closed mid-body");
      case fill_status::timed_out:
        throw http_error(408, "read deadline exceeded mid-body");
    }
  }
  request.body = buffer_.substr(0, body_size);
  buffer_.erase(0, body_size);  // keep pipelined bytes for the next request
  return request;
}

bool http_connection::write_response(const http_response& response,
                                     bool keep_alive) {
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     http_status_reason(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  wire += "\r\n";
  wire += response.body;

  std::size_t sent = 0;
  while (sent < wire.size()) {
    if (limits_.write_timeout_ms > 0) {
      pollfd waiter{};
      waiter.fd = fd_;
      waiter.events = POLLOUT;
      const int ready = ::poll(&waiter, 1, limits_.write_timeout_ms);
      if (ready == 0) return false;  // peer stopped reading: drop it
      if (ready < 0) {
        if (errno == EINTR) continue;
        return false;
      }
    }
    std::size_t want = wire.size() - sent;
    if (faults_ != nullptr) {
      switch (faults_->next("socket.write")) {
        case fault_action::fail_eio:
        case fault_action::fail_enospc:
          return false;  // injected: the peer vanished mid-write
        case fault_action::short_op:
          want = faults_->short_size(want);
          break;
        default:
          break;
      }
    }
    // MSG_NOSIGNAL: a vanished peer must surface as an error, not SIGPIPE.
    const ssize_t wrote = ::send(fd_, wire.data() + sent, want, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

tcp_listener::tcp_listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw http_error(500, std::string("socket(): ") + std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw http_error(500, "bind/listen on port " + std::to_string(port) +
                              ": " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size);
  port_ = ntohs(bound.sin_port);
  fd_.store(fd);
}

tcp_listener::~tcp_listener() { shut_down(); }

int tcp_listener::accept_connection() {
  for (;;) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return -1;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // listener shut down (or unrecoverable): stop accepting
  }
}

void tcp_listener::shut_down() {
  // exchange() makes a concurrent or repeated shut_down close exactly once.
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  // shutdown() unblocks a concurrent accept(); close() releases the port.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace ppg
