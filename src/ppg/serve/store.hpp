// The durable session store of ppg-serve (DESIGN.md §13): one spill file
// per session, replaced atomically (util/atomic_file) on every spill, with
// a monotonic generation number. On boot serve_app scans the store and
// restores every valid spill under its original session id; files that
// fail the envelope parse — truncated, torn, hand-edited — are moved into
// a quarantine/ subdirectory and reported in /stats, never fatal. The
// interface is injectable so tests can substitute an in-memory store and
// the filesystem store can be wired with a fault_plan.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppg/serve/faults.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

/// Version of the spill-envelope schema ({"store_version", "id",
/// "generation", "seed", "checkpoint"}). The inner "checkpoint" document
/// is the unmodified §9 checkpoint (save_checkpoint bytes) and carries its
/// own schema_version.
inline constexpr std::uint64_t store_schema_version = 1;

/// One session's spill: everything needed to resurrect it under its
/// original id.
struct store_file {
  std::string id;
  std::uint64_t generation = 0;  ///< monotonic per session, 1 = first spill
  std::uint64_t seed = 0;        ///< the session's creation seed (info only)
  json checkpoint;               ///< the §9 checkpoint document
};

/// Result of a boot-time scan: the parseable spills (by id, ascending) and
/// the files that were quarantined, each as "name: reason".
struct store_scan {
  std::vector<store_file> sessions;
  std::vector<std::string> quarantined;
};

/// Where spills live. Implementations must be safe to call from multiple
/// threads (sessions spill concurrently under their own locks).
class session_store {
 public:
  virtual ~session_store() = default;

  /// Durably replaces the spill for `file.id`. Returns false (with *error)
  /// on any I/O failure; the previous spill, if any, is still intact.
  virtual bool spill(const store_file& file, std::string* error) = 0;

  /// Scans the store, quarantining envelopes that fail the strict parse.
  /// The inner checkpoint document is returned *unvalidated* — the caller
  /// runs it through restore_checkpoint and calls quarantine() on
  /// rejection, so checkpoint-level corruption uses the same strict parser
  /// as the wire protocol.
  virtual store_scan scan() = 0;

  /// Forgets the spill for `id` (a destroyed session must not resurrect).
  virtual void remove(const std::string& id) = 0;

  /// Moves `id`'s spill into quarantine (used when the envelope parsed but
  /// the checkpoint inside failed validation). False when nothing to move.
  virtual bool quarantine(const std::string& id, const std::string& reason) = 0;

  /// {"dir"?, "spills", "spill_failures", "quarantined": [...]} — merged
  /// into GET /stats by serve_app.
  [[nodiscard]] virtual json stats() const = 0;
};

/// The filesystem store: `dir`/<id>.session.json envelopes, quarantine/
/// subdirectory for corrupt files, `*.tmp` leftovers from interrupted
/// writes deleted on scan. Creates `dir` (and parents) if missing; throws
/// ppg::invariant_error when it cannot. `faults` (nullable) is consulted
/// on every write/fsync/rename.
[[nodiscard]] std::unique_ptr<session_store> make_fs_store(
    const std::string& dir, std::shared_ptr<fault_plan> faults = nullptr);

/// Builds the spill envelope document for a session (exposed for tests and
/// the crash-recovery tooling, which parse spill files directly).
[[nodiscard]] json store_envelope(const store_file& file);

/// Strict parse of store_envelope()'s form; throws ppg::invariant_error.
[[nodiscard]] store_file parse_store_envelope(const json& doc);

}  // namespace ppg
