// Hand-rolled HTTP/1.1 over POSIX sockets — the wire layer of ppg-serve.
// Zero dependencies, same discipline as the rest of the stack: a strict
// bounded parser for exactly the subset the service needs (verb + target +
// headers + Content-Length body), pointed errors for everything else.
// Transfer-Encoding, multipart, and TLS are deliberately out of scope; the
// daemon binds loopback and speaks plain HTTP to local clients and
// reverse proxies.
//
// The reader is defensive by construction: header bytes and body bytes are
// capped *before* buffering (a peer cannot make the server allocate more
// than the configured limits), and every malformed input maps to the HTTP
// status the connection should die with (http_error). JSON bodies get a
// second bounded parse at the app layer (util/json parse_limits).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ppg/serve/faults.hpp"

namespace ppg {

/// Thrown by the connection reader when the peer sent something the server
/// must refuse; `status` is the HTTP status to answer with before closing
/// (400 malformed, 413 oversized body, 431 oversized headers, 501
/// unimplemented transfer encoding, 505 unknown HTTP version).
class http_error : public std::runtime_error {
 public:
  http_error(int status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// One parsed request. Header names are stored lowercased (HTTP header
/// names are case-insensitive); values are trimmed of surrounding spaces.
struct http_request {
  std::string method;  ///< verb as sent, e.g. "GET"
  std::string target;  ///< path without the query string, e.g. "/healthz"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// Whether the connection should stay open after the response: HTTP/1.1
  /// defaults to keep-alive unless the client sent "Connection: close".
  [[nodiscard]] bool keep_alive() const;
};

struct http_response {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
};

/// Canonical reason phrase for the statuses this server emits; "Status"
/// for anything unknown (the code is what matters on the wire).
[[nodiscard]] const char* http_status_reason(int status);

/// Per-connection read bounds, enforced before buffering, and the
/// connection deadlines. A read deadline of 0 disables the timeout; with
/// one set, a connection idle between requests past the deadline is
/// *reaped* (closed silently — the keep-alive analogue of an idle-timeout
/// reaper, so a slowloris peer cannot pin a worker), and a peer that
/// stalls mid-request or mid-body is answered 408 and dropped. The write
/// deadline bounds how long a response write may block on a peer that
/// stopped reading.
struct http_limits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4u * 1024 * 1024;
  int read_timeout_ms = 0;   ///< per-recv deadline; 0 = block forever
  int write_timeout_ms = 0;  ///< per-send deadline; 0 = block forever
};

/// One accepted connection: owns the fd, buffers reads across keep-alive
/// requests (bytes of a pipelined next request are kept, not dropped), and
/// closes on destruction. `faults` (nullable) injects deterministic short
/// reads/writes and failures at the "socket.read"/"socket.write" sites.
class http_connection {
 public:
  http_connection(int fd, http_limits limits,
                  std::shared_ptr<fault_plan> faults = nullptr)
      : fd_(fd), limits_(limits), faults_(std::move(faults)) {}
  ~http_connection();

  http_connection(const http_connection&) = delete;
  http_connection& operator=(const http_connection&) = delete;

  /// Reads one request. Returns nullopt on clean EOF (peer closed between
  /// requests — the keep-alive loop's exit) and on an *idle* read-deadline
  /// expiry (nothing buffered: the reaper case); throws http_error when
  /// the peer sent something refusable mid-request, including http_error
  /// 408 when the deadline expires with a partial request buffered.
  [[nodiscard]] std::optional<http_request> read_request();

  /// Writes a response; returns false when the peer is gone (EPIPE etc.)
  /// or stalled past the write deadline, which callers treat as
  /// end-of-connection, not an error.
  bool write_response(const http_response& response, bool keep_alive);

 private:
  enum class fill_status { data, eof, timed_out };

  /// recv() more bytes into buffer_, honoring the read deadline.
  fill_status fill();

  int fd_;
  http_limits limits_;
  std::shared_ptr<fault_plan> faults_;
  std::string buffer_;
};

/// A listening TCP socket on 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port, reported by port() — how CI starts the daemon without a
/// port race). Loopback-only by design: fronting proxies terminate
/// external traffic.
class tcp_listener {
 public:
  explicit tcp_listener(std::uint16_t port);
  ~tcp_listener();

  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; returns the connected fd, or -1 once
  /// shut_down() has been called (the accept loop's exit).
  [[nodiscard]] int accept_connection();

  /// Unblocks accept_connection() from another thread and stops listening.
  void shut_down();

 private:
  /// Atomic: shut_down() races with the acceptor thread's reads by design
  /// (that is how it unblocks a blocking accept()).
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace ppg
