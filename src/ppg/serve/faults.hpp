// Deterministic fault injection for the ppg-serve durability and socket
// paths. A fault_plan is a parsed, seeded schedule of failures keyed by
// *site* (a stable string naming an I/O operation: "store.write",
// "store.fsync", "store.rename", "socket.read", "socket.write") and the
// 1-based count of operations at that site — "the 3rd store write fails
// with EIO" — so tests and the crash-recovery script force every failure
// branch without racing wall clocks. The plan is threaded through the
// session store's file_ops and the HTTP connection loops; a null plan is
// the (default) no-fault fast path.
//
// Determinism contract: given the same plan and the same operation
// sequence, the same faults fire. The only randomness is the size of a
// "short" operation, drawn from the plan's seeded rng — still a pure
// function of (seed, firing order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ppg/util/atomic_file.hpp"
#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

/// What an armed fault does to its operation.
enum class fault_action : std::uint8_t {
  none,        ///< no fault at this (site, count)
  fail_eio,    ///< the operation fails with EIO
  fail_enospc, ///< the operation fails with ENOSPC
  short_op,    ///< the operation transfers only part of its buffer
  torn_rename, ///< rename "succeeds" but leaves a torn destination file
  abort_now,   ///< the process aborts (SIGABRT) at this operation
};

[[nodiscard]] const char* fault_action_name(fault_action action);

/// One scheduled fault: the `nth` operation at `site` performs `action`.
struct fault_rule {
  std::string site;
  std::uint64_t nth = 1;
  fault_action action = fault_action::fail_eio;
};

/// The full parsed plan. Thread-safe: sites are counted under a lock (I/O
/// paths that consult the plan are never per-interaction hot paths).
class fault_plan {
 public:
  /// Strict parse of {"seed"?: u64, "abort_at_interactions"?: u64,
  /// "rules"?: [{"site": str, "nth": u64 >= 1, "action": "eio" | "enospc"
  /// | "short" | "torn" | "abort"}]}. Unknown keys and unknown actions are
  /// rejected with ppg::invariant_error.
  [[nodiscard]] static std::shared_ptr<fault_plan> parse(const json& doc);

  /// Counts one operation at `site` and returns the action scheduled for
  /// it (fault_action::none almost always). abort_now fires here.
  [[nodiscard]] fault_action next(const std::string& site);

  /// The truncated size for a short operation on `requested` bytes: at
  /// least 1, strictly less than `requested` when possible, drawn from the
  /// plan's seeded rng.
  [[nodiscard]] std::size_t short_size(std::size_t requested);

  /// Interaction count at which an advancing session aborts the process
  /// (the deterministic stand-in for `kill -9` mid-advance); 0 = never.
  [[nodiscard]] std::uint64_t abort_at_interactions() const {
    return abort_at_;
  }

  /// Total faults fired so far (for /stats).
  [[nodiscard]] std::uint64_t fired() const;

 private:
  mutable std::mutex mutex_;
  std::vector<fault_rule> rules_;
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t abort_at_ = 0;
  std::uint64_t fired_ = 0;
  rng jitter_{1};
};

/// file_ops that consults a fault_plan before forwarding to `base`: sites
/// "store.write", "store.fsync", "store.rename". A torn rename reads the
/// temp file, writes a truncated *final* file directly (bypassing the
/// atomic path, as a crashing disk without barriers would), unlinks the
/// temp, and reports success — the adversarial case the boot-time
/// quarantine scan must catch.
class faulty_file_ops final : public file_ops {
 public:
  faulty_file_ops(std::shared_ptr<fault_plan> plan, file_ops& base)
      : plan_(std::move(plan)), base_(&base) {}

  ssize_t write_fd(int fd, const void* data, std::size_t size) override;
  int fsync_fd(int fd) override;
  int rename_file(const std::string& from, const std::string& to) override;

 private:
  std::shared_ptr<fault_plan> plan_;
  file_ops* base_;
};

}  // namespace ppg
