// HTTP/1.1 client for ppg-serve, built for a daemon that is allowed to
// die. Three layers:
//
//   http_client   — one TCP connection, blocking request/response with a
//                   per-request deadline; throws client_error on any
//                   transport failure (carrying whether request bytes had
//                   already reached the wire).
//   serve_client  — reconnect + retry with capped exponential backoff and
//                   seeded jitter; non-idempotent requests are only
//                   retried when the failed attempt never hit the wire.
//   session_handle — a durable simulation session: advance() reconciles
//                   interaction counts after a transport failure and, when
//                   the daemon lost the session entirely (404), restores
//                   it from the last fetched checkpoint and re-drives the
//                   missing interactions.
//
// See DESIGN.md §13 and examples/serve_loadgen.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "ppg/util/json.hpp"
#include "ppg/util/rng.hpp"

namespace ppg {

struct client_config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2'000;
  int request_timeout_ms = 10'000;  ///< whole request+response deadline
  std::size_t max_retries = 5;      ///< extra attempts after the first
  int backoff_initial_ms = 50;
  int backoff_cap_ms = 2'000;
  std::uint64_t jitter_seed = 1;  ///< backoff jitter (deterministic tests)
  std::size_t max_response_bytes = 64u * 1024 * 1024;
};

struct client_response {
  int status = 0;
  std::string body;
};

/// A transport failure (connect, deadline, torn connection — never an HTTP
/// status). sent() distinguishes "safe to blindly retry" (no request byte
/// reached the wire) from "the server may have executed this".
class client_error : public std::runtime_error {
 public:
  client_error(const std::string& what, bool request_sent)
      : std::runtime_error(what), sent_(request_sent) {}
  [[nodiscard]] bool sent() const { return sent_; }

 private:
  bool sent_;
};

/// One connection. Not thread-safe; serve_client owns at most one.
class http_client {
 public:
  /// Connects (bounded by connect_timeout_ms); throws client_error.
  explicit http_client(const client_config& config);
  ~http_client();

  http_client(const http_client&) = delete;
  http_client& operator=(const http_client&) = delete;

  /// One request/response exchange under request_timeout_ms.
  [[nodiscard]] client_response request(const std::string& method,
                                        const std::string& target,
                                        const std::string& body);

  /// False once the server answered Connection: close (or the fd died);
  /// the owner should discard this client and connect a fresh one.
  [[nodiscard]] bool alive() const { return fd_ >= 0; }

 private:
  void close_fd();
  /// Milliseconds left before `deadline_ms` on the monotonic clock.
  [[nodiscard]] int remaining_ms(std::int64_t deadline_ms) const;

  client_config config_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last response (pipelining slack)
};

struct client_stats {
  std::uint64_t requests = 0;    ///< attempts put on the wire
  std::uint64_t retries = 0;     ///< attempts after a transport failure
  std::uint64_t reconnects = 0;  ///< fresh connections established
};

/// The retrying facade. HTTP error statuses are returned, not thrown —
/// only transport failures that exhaust the retry budget (or cannot be
/// safely retried) surface as client_error.
class serve_client {
 public:
  explicit serve_client(const client_config& config);

  /// `idempotent` guards the dangerous window: when false and a failed
  /// attempt may have reached the server (client_error::sent()), the error
  /// propagates instead of blindly re-executing.
  [[nodiscard]] client_response request(const std::string& method,
                                        const std::string& target,
                                        const std::string& body = "",
                                        bool idempotent = true);

  [[nodiscard]] const client_stats& stats() const { return stats_; }
  [[nodiscard]] const client_config& config() const { return config_; }

 private:
  client_config config_;
  std::unique_ptr<http_client> connection_;
  rng jitter_;
  client_stats stats_;
};

/// A session that survives daemon restarts. Keeps the client-side target
/// interaction count and the last fetched checkpoint; advance() drives the
/// server back to the target through any number of crashes.
class session_handle {
 public:
  /// POST /sessions + initial checkpoint fetch.
  static session_handle create(serve_client& client, const json& recipe,
                               const std::string& engine, std::uint64_t seed);

  /// Advances by `interactions`, transparently recovering from transport
  /// failures (reconcile via GET /sessions/{id}) and from session loss
  /// (restore-by-checkpoint, which may assign a fresh id). Throws
  /// client_error when the daemon stays unreachable past the retry budget.
  void advance(std::uint64_t interactions);

  /// Refreshes the recovery checkpoint (GET /sessions/{id}/checkpoint);
  /// everything advanced before this point is no longer at risk.
  void refresh_checkpoint();

  [[nodiscard]] const std::string& id() const { return id_; }
  /// Interactions confirmed on the server side.
  [[nodiscard]] std::uint64_t interactions() const { return interactions_; }
  /// Times this handle restored its session from a checkpoint.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 private:
  session_handle(serve_client& client, std::string id,
                 std::uint64_t interactions)
      : client_(&client), id_(std::move(id)), interactions_(interactions) {}

  /// GET /sessions/{id} → confirmed interaction count; restores from the
  /// checkpoint on 404. Returns the server-side count.
  std::uint64_t reconcile();
  /// POST /sessions/restore with the stored checkpoint; adopts the new id.
  void recover();

  serve_client* client_;
  std::string id_;
  std::uint64_t interactions_ = 0;
  json checkpoint_;  ///< last fetched checkpoint document
  std::uint64_t recoveries_ = 0;
};

}  // namespace ppg
