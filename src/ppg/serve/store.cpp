#include "ppg/serve/store.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include "ppg/util/atomic_file.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

constexpr const char* spill_suffix = ".session.json";

/// mkdir -p: creates `path` and every missing parent. Throws on failure —
/// a store that cannot create its directory cannot make any durability
/// promise, and that is a boot-time configuration error.
void ensure_dir(const std::string& path) {
  PPG_CHECK(!path.empty(), "session store: directory must not be empty");
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw invariant_error("session store: mkdir " + prefix + ": " +
                            std::strerror(errno));
    }
  }
}

class fs_session_store final : public session_store {
 public:
  fs_session_store(std::string dir, std::shared_ptr<fault_plan> faults)
      : dir_(std::move(dir)), faults_(std::move(faults)) {
    ensure_dir(dir_);
    ensure_dir(dir_ + "/quarantine");
  }

  bool spill(const store_file& file, std::string* error) override {
    const std::string bytes = store_envelope(file).dump_string(true);
    bool ok;
    if (faults_ != nullptr) {
      faulty_file_ops ops(faults_, default_file_ops());
      ok = atomic_write_file(path_for(file.id), bytes, error, ops);
    } else {
      ok = atomic_write_file(path_for(file.id), bytes, error);
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ok) {
      ++spills_;
    } else {
      ++spill_failures_;
    }
    return ok;
  }

  store_scan scan() override {
    store_scan result;
    DIR* dir = ::opendir(dir_.c_str());
    if (dir == nullptr) return result;
    std::vector<std::string> names;
    while (dirent* entry = ::readdir(dir)) {
      names.emplace_back(entry->d_name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());

    for (const std::string& name : names) {
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        // Leftover of a write interrupted by a crash: by construction the
        // final file is either the previous generation or absent; the temp
        // is garbage either way.
        ::unlink((dir_ + "/" + name).c_str());
        continue;
      }
      const std::size_t suffix_len = std::strlen(spill_suffix);
      if (name.size() <= suffix_len ||
          name.compare(name.size() - suffix_len, suffix_len, spill_suffix) !=
              0) {
        continue;
      }
      const std::string id = name.substr(0, name.size() - suffix_len);
      std::string bytes;
      std::string error;
      if (!read_file(dir_ + "/" + name, &bytes, &error)) {
        move_to_quarantine(name, "unreadable: " + error, &result);
        continue;
      }
      try {
        store_file file = parse_store_envelope(json::parse(bytes));
        PPG_CHECK(file.id == id, "session store: envelope id '" + file.id +
                                     "' disagrees with file name '" + name +
                                     "'");
        result.sessions.push_back(std::move(file));
      } catch (const invariant_error& violation) {
        move_to_quarantine(name, violation.what(), &result);
      }
    }
    return result;
  }

  void remove(const std::string& id) override {
    ::unlink(path_for(id).c_str());
  }

  bool quarantine(const std::string& id, const std::string& reason) override {
    store_scan sink;
    return move_to_quarantine(id + spill_suffix, reason, &sink);
  }

  json stats() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    json body = json::object();
    body["dir"] = dir_;
    body["spills"] = spills_;
    body["spill_failures"] = spill_failures_;
    json quarantined = json::array();
    for (const std::string& entry : quarantined_) {
      quarantined.push_back(entry);
    }
    body["quarantined"] = std::move(quarantined);
    return body;
  }

 private:
  std::string path_for(const std::string& id) const {
    return dir_ + "/" + id + spill_suffix;
  }

  /// Moves `name` into quarantine/ (never deleting evidence: a numeric
  /// suffix avoids clobbering an earlier quarantined file of the same
  /// name) and records "name: reason" for /stats and the scan result.
  bool move_to_quarantine(const std::string& name, const std::string& reason,
                          store_scan* result) {
    const std::string from = dir_ + "/" + name;
    std::string to = dir_ + "/quarantine/" + name;
    for (int attempt = 1; ::access(to.c_str(), F_OK) == 0 && attempt < 100;
         ++attempt) {
      to = dir_ + "/quarantine/" + name + "." + std::to_string(attempt);
    }
    if (::rename(from.c_str(), to.c_str()) != 0) return false;
    const std::string entry = name + ": " + reason;
    result->quarantined.push_back(entry);
    const std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.push_back(entry);
    return true;
  }

  std::string dir_;
  std::shared_ptr<fault_plan> faults_;
  mutable std::mutex mutex_;
  std::uint64_t spills_ = 0;
  std::uint64_t spill_failures_ = 0;
  std::vector<std::string> quarantined_;
};

}  // namespace

std::unique_ptr<session_store> make_fs_store(
    const std::string& dir, std::shared_ptr<fault_plan> faults) {
  return std::make_unique<fs_session_store>(dir, std::move(faults));
}

json store_envelope(const store_file& file) {
  json doc = json::object();
  doc["store_version"] = store_schema_version;
  doc["id"] = file.id;
  doc["generation"] = file.generation;
  doc["seed"] = file.seed;
  doc["checkpoint"] = file.checkpoint;
  return doc;
}

store_file parse_store_envelope(const json& doc) {
  json_require_keys(doc, {"store_version", "id", "generation", "seed",
                          "checkpoint"},
                    "session spill envelope");
  const std::uint64_t version =
      json_require_uint(doc, "store_version", "session spill envelope");
  PPG_CHECK(version == store_schema_version,
            "session spill envelope: unknown store_version " +
                std::to_string(version));
  store_file file;
  file.id = json_require_string(doc, "id", "session spill envelope");
  PPG_CHECK(!file.id.empty(), "session spill envelope: empty id");
  file.generation =
      json_require_uint(doc, "generation", "session spill envelope");
  PPG_CHECK(file.generation >= 1,
            "session spill envelope: generation must be >= 1");
  file.seed = json_require_uint(doc, "seed", "session spill envelope");
  file.checkpoint = json_require(doc, "checkpoint", "session spill envelope");
  return file;
}

}  // namespace ppg
