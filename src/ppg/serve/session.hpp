// Session table of the ppg-serve daemon: each session owns one recipe +
// engine pair, a lifecycle state, and its accounting counters. The table
// is the only shared index; per-session exclusivity is a try_lock on the
// session's own mutex (an engine mid-advance answers 409, never blocks a
// connection thread), and the counters are atomics so /stats reads them
// without touching any session lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/serve/kernel_cache.hpp"

namespace ppg {

/// Lifecycle of a session. created → (advancing ⇄ idle)* → destroyed;
/// `destroyed` is only ever observed by a request that raced a DELETE.
enum class session_state : std::uint8_t { created, advancing, idle, destroyed };

[[nodiscard]] const char* session_state_name(session_state state);

/// One live simulation session. Engines are single-threaded objects: every
/// touch of `engine` (advance, census, checkpoint) happens under `mu`,
/// acquired with try_lock so concurrent requests on one session fail fast
/// with 409 instead of queuing.
struct serve_session {
  std::string id;
  sim_recipe recipe;
  engine_kind kind;
  std::uint64_t seed = 0;
  std::uint64_t fingerprint = 0;  ///< recipe_fingerprint (session identity)
  bool kernel_cache_hit = false;  ///< kernel came warm from the cache
  bool restored = false;          ///< born from POST /sessions/restore
  bool recovered = false;         ///< resurrected from the durable store
  std::unique_ptr<sim_engine> engine;

  // Durability bookkeeping (DESIGN.md §13). The spill cursor is only
  // touched under `mu` (during advance / drain); the flags and `generation`
  // are atomics so /stats reads them lock-free.
  std::atomic<bool> durable{false};  ///< spills to the store (off = no store)
  std::atomic<bool> degraded{false};  ///< a spill failed; durability is off
  std::atomic<std::uint64_t> generation{0};  ///< last spilled generation
  std::uint64_t chunks_since_spill = 0;      ///< advance chunks not yet spilled

  std::mutex mu;  ///< engine exclusivity; try_lock → 409 when contended
  std::atomic<session_state> state{session_state::created};
  std::atomic<std::uint64_t> advances{0};  ///< completed advance requests
  std::atomic<std::uint64_t> slices{0};    ///< scheduler slices executed
  /// engine->interactions() as of the last completed advance (or birth);
  /// lets /stats report per-session totals without touching any session
  /// lock (at most one in-flight advance stale).
  std::atomic<std::uint64_t> interactions{0};

  serve_session(std::string session_id, sim_recipe session_recipe,
                engine_kind session_kind, std::uint64_t rng_seed)
      : id(std::move(session_id)),
        recipe(std::move(session_recipe)),
        kind(session_kind),
        seed(rng_seed) {}
};

/// The id → session index. Sessions are held by shared_ptr so a request
/// that resolved an id keeps its session alive even if a concurrent DELETE
/// drops it from the table (the request then observes state == destroyed).
class session_table {
 public:
  explicit session_table(kernel_cache& kernels, std::size_t max_sessions)
      : kernels_(&kernels), max_sessions_(max_sessions) {}

  /// Creates a session from a parsed recipe document: builds the recipe,
  /// pulls (or compiles) the shared kernel for census-level engines, and
  /// seeds the engine. Throws invariant_error on a malformed recipe and
  /// http_error(503) at the session cap.
  std::shared_ptr<serve_session> create(const json& recipe_doc,
                                        engine_kind kind, std::uint64_t seed);

  /// Creates a session from a checkpoint document (POST /sessions/restore):
  /// same kernel-cache path, engine state restored bit-exactly.
  std::shared_ptr<serve_session> restore(const json& checkpoint);

  /// Resurrects a session from the durable store under its *original* id
  /// (clients resume transparently after a daemon restart): the restore()
  /// path plus a forced id. Throws invariant_error when the id is already
  /// taken or malformed; future create() ids never collide with adopted
  /// ones. `seed` is the creation seed recorded in the spill envelope.
  std::shared_ptr<serve_session> adopt(const std::string& id,
                                       std::uint64_t seed,
                                       const json& checkpoint);

  /// The session for `id`, or nullptr when unknown (or already destroyed).
  [[nodiscard]] std::shared_ptr<serve_session> find(const std::string& id);

  /// Removes `id` from the table and marks it destroyed; false when the id
  /// is unknown (including a second DELETE of the same id).
  bool destroy(const std::string& id);

  /// Stable-ordered snapshot of the live sessions (for /stats).
  [[nodiscard]] std::vector<std::shared_ptr<serve_session>> snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  /// Builds a session from a checkpoint document (shared by restore and
  /// adopt); the caller inserts it.
  std::shared_ptr<serve_session> build_restored(const json& checkpoint);

  /// Inserts with the next generated id ("s<n>") — or, when `forced_id` is
  /// nonempty, under that id (bumping the generator past any "s<n>" form so
  /// later creates cannot collide).
  std::shared_ptr<serve_session> insert(std::shared_ptr<serve_session> session,
                                        const std::string& forced_id = "");

  kernel_cache* kernels_;
  std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::vector<std::shared_ptr<serve_session>> sessions_;  ///< insertion order
};

}  // namespace ppg
