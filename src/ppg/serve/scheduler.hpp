// The fair cooperative scheduler: advances sessions by slicing each
// interaction budget into bounded chunks and running every chunk as one
// thread_pool task, re-submitted at the FIFO queue's tail. With more
// sessions than workers this yields round-robin interleaving — no session
// monopolizes a worker for its whole budget — while each session's chunks
// still run strictly in order on its own engine.
//
// Determinism contract: slicing is engine-visible only through run() call
// boundaries, and every engine's trajectory is a pure function of its own
// run() schedule (engines draw from private RNG streams; see DESIGN.md §9).
// advance(engine, B) always issues the fixed schedule
//   run(min(chunk, B)), run(min(chunk, B - chunk)), ...
// regardless of what other sessions are in flight, so an interleaved
// multi-session run is bit-identical to running each session solo with the
// same chunked schedule — the property test_serve pins.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ppg/pp/engine.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {

class fair_scheduler {
 public:
  /// `threads` as for thread_pool (0 = hardware concurrency); `chunk` is
  /// the per-slice interaction bound.
  explicit fair_scheduler(std::size_t threads = 0,
                          std::uint64_t chunk = std::uint64_t{1} << 16);

  /// Advances `engine` by exactly `budget` interactions in chunked slices,
  /// blocking until done; returns the number of slices executed. The caller
  /// must hold the engine exclusively for the whole call (ppg-serve holds
  /// the session lock). Exceptions thrown by the engine are rethrown here.
  std::uint64_t advance(sim_engine& engine, std::uint64_t budget);

  [[nodiscard]] std::uint64_t chunk() const { return chunk_; }
  [[nodiscard]] std::size_t threads() const { return pool_.size(); }
  [[nodiscard]] std::size_t queued() const { return pool_.queued(); }
  [[nodiscard]] std::size_t active() const { return pool_.active(); }

 private:
  std::uint64_t chunk_;
  thread_pool pool_;
};

}  // namespace ppg
