// ppg-serve: the simulation-session daemon. Binds 127.0.0.1 (loopback
// only), prints the listening address, and serves until killed. See
// DESIGN.md §10/§13 and README "Running the service".
//
// Shutdown protocol: the first SIGTERM/SIGINT starts a graceful drain —
// stop accepting, let in-flight advances finish their slices, spill every
// durable session, exit. A second SIGTERM/SIGINT during the drain forces
// an immediate exit that still spills every session not mid-advance (a
// busy session's last periodic spill stands).
//
// Exit codes: 0 = clean shutdown (drain complete, or forced-but-spilled);
// 1 = startup failure (bad port, unreadable store, bad fault plan);
// 2 = usage error.
#include <csignal>
#include <ctime>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "ppg/serve/faults.hpp"
#include "ppg/serve/server.hpp"
#include "ppg/util/atomic_file.hpp"
#include "ppg/util/json.hpp"

namespace {

volatile std::sig_atomic_t termination_signals = 0;

void handle_signal(int) { ++termination_signals; }

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr
      << "ppg-serve: " << message << "\n"
      << "usage: ppg-serve [--port N] [--threads N] [--chunk N]\n"
      << "                 [--connection-threads N] [--max-body BYTES]\n"
      << "                 [--store DIR] [--spill-every CHUNKS]\n"
      << "                 [--read-timeout-ms N] [--write-timeout-ms N]\n"
      << "                 [--fault-plan JSON|@FILE]\n"
      << "  --port 0 (default) picks an ephemeral port and prints it\n"
      << "  --store DIR enables the durable session store (DESIGN.md §13)\n"
      << "  --spill-every 0 spills only on idle transitions and drain\n"
      << "  --read/write-timeout-ms 0 disables that connection deadline\n"
      << "exit codes: 0 clean shutdown, 1 startup failure, 2 usage error\n";
  std::exit(2);
}

std::uint64_t parse_count(const std::string& flag, const char* text) {
  if (text == nullptr) usage_error(flag + " needs a value");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    usage_error(flag + ": '" + text + "' is not a number");
  }
  return value;
}

/// "--fault-plan '{...}'" inline, or "--fault-plan @plan.json" from a file.
std::shared_ptr<ppg::fault_plan> parse_fault_plan(const char* text) {
  if (text == nullptr) usage_error("--fault-plan needs a value");
  std::string source = text;
  if (!source.empty() && source[0] == '@') {
    std::string bytes;
    std::string error;
    if (!ppg::read_file(source.substr(1), &bytes, &error)) {
      std::cerr << "ppg-serve: --fault-plan: " << error << "\n";
      std::exit(1);
    }
    source = std::move(bytes);
  }
  return ppg::fault_plan::parse(ppg::json::parse(source));
}

void install_signal_handlers() {
  // sigaction, not std::signal: handler semantics are specified (no
  // SA_RESETHAND surprises), and we pick SA_RESTART off so blocking calls
  // on the main thread actually observe the signal.
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A peer that vanished mid-write must surface as EPIPE, never kill the
  // daemon (belt to http.cpp's MSG_NOSIGNAL braces).
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  sigaction(SIGPIPE, &ignore, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  ppg::serve_config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--port") {
      config.port = static_cast<std::uint16_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--threads") {
      config.threads = static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--chunk") {
      config.chunk = parse_count(flag, value);
      if (config.chunk == 0) usage_error("--chunk must be positive");
      ++i;
    } else if (flag == "--connection-threads") {
      config.connection_threads =
          static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--max-body") {
      config.max_body_bytes =
          static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--store") {
      if (value == nullptr) usage_error("--store needs a directory");
      config.store_dir = value;
      ++i;
    } else if (flag == "--spill-every") {
      config.spill_every_chunks = parse_count(flag, value);
      ++i;
    } else if (flag == "--read-timeout-ms") {
      config.read_timeout_ms = static_cast<int>(parse_count(flag, value));
      ++i;
    } else if (flag == "--write-timeout-ms") {
      config.write_timeout_ms = static_cast<int>(parse_count(flag, value));
      ++i;
    } else if (flag == "--fault-plan") {
      try {
        config.faults = parse_fault_plan(value);
      } catch (const std::exception& error) {
        std::cerr << "ppg-serve: --fault-plan: " << error.what() << "\n";
        return 1;
      }
      ++i;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  install_signal_handlers();

  std::unique_ptr<ppg::serve_app> app;
  try {
    app = std::make_unique<ppg::serve_app>(config);
  } catch (const std::exception& error) {
    std::cerr << "ppg-serve: " << error.what() << "\n";
    return 1;
  }
  if (app->store() != nullptr) {
    std::cout << "ppg-serve: durable store at " << config.store_dir
              << std::endl;
  }

  ppg::http_server server(*app, config);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "ppg-serve: " << error.what() << "\n";
    return 1;
  }

  // The exact line scripts/check_serve.py waits for before connecting.
  std::cout << "ppg-serve listening on 127.0.0.1:" << server.port()
            << std::endl;

  sigset_t mask;
  sigemptyset(&mask);
  while (termination_signals == 0) {
    sigsuspend(&mask);  // park until SIGINT/SIGTERM; connections run on
                        // their own threads
  }

  // Graceful drain on a helper thread so the main thread stays responsive
  // to a second signal (impatient operators, supervisor kill escalation).
  std::cout << "ppg-serve: draining (signal again to force shutdown)\n";
  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    server.stop();  // stop accepting; in-flight responses complete
    app->drain();   // blocking per-session lock + final spill
    drained.store(true);
  });
  while (!drained.load()) {
    if (termination_signals >= 2) {
      // Forced: spill whatever is not mid-advance and leave now. _Exit
      // skips destructors — the drainer may hold session locks.
      app->spill_all_unlocked_sessions();
      std::cout << "ppg-serve: forced shutdown (sessions spilled)\n";
      std::cout.flush();
      std::_Exit(0);
    }
    timespec nap{};
    nap.tv_nsec = 50'000'000;  // 50ms
    nanosleep(&nap, nullptr);
  }
  drainer.join();
  std::cout << "ppg-serve: drained, shutting down\n";
  return 0;
}
