// ppg-serve: the simulation-session daemon. Binds 127.0.0.1 (loopback
// only), prints the listening address, and serves until killed. See
// DESIGN.md §10 and README "Running the service".
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "ppg/serve/server.hpp"

namespace {

volatile std::sig_atomic_t interrupted = 0;

void handle_signal(int) { interrupted = 1; }

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ppg-serve: " << message << "\n"
            << "usage: ppg-serve [--port N] [--threads N] [--chunk N]\n"
            << "                 [--connection-threads N] [--max-body BYTES]\n"
            << "  --port 0 (default) picks an ephemeral port and prints it\n";
  std::exit(2);
}

std::uint64_t parse_count(const std::string& flag, const char* text) {
  if (text == nullptr) usage_error(flag + " needs a value");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    usage_error(flag + ": '" + text + "' is not a number");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  ppg::serve_config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--port") {
      config.port = static_cast<std::uint16_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--threads") {
      config.threads = static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--chunk") {
      config.chunk = parse_count(flag, value);
      if (config.chunk == 0) usage_error("--chunk must be positive");
      ++i;
    } else if (flag == "--connection-threads") {
      config.connection_threads =
          static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else if (flag == "--max-body") {
      config.max_body_bytes =
          static_cast<std::size_t>(parse_count(flag, value));
      ++i;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  ppg::serve_app app(config);
  ppg::http_server server(app, config);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "ppg-serve: " << error.what() << "\n";
    return 1;
  }

  // The exact line scripts/check_serve.py waits for before connecting.
  std::cout << "ppg-serve listening on 127.0.0.1:" << server.port()
            << std::endl;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  sigset_t mask;
  sigemptyset(&mask);
  while (interrupted == 0) {
    sigsuspend(&mask);  // park until SIGINT/SIGTERM; connections run on
                        // their own threads
  }
  std::cout << "ppg-serve: shutting down\n";
  server.stop();
  return 0;
}
