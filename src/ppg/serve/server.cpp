#include "ppg/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "ppg/util/error.hpp"

namespace ppg {
namespace {

http_response error_response(int status, const std::string& message) {
  json body = json::object();
  body["error"] = message;
  http_response response;
  response.status = status;
  response.body = body.dump_string(false);
  return response;
}

http_response json_response(int status, const json& body) {
  http_response response;
  response.status = status;
  response.body = body.dump_string(false);
  return response;
}

/// Splits "/sessions/{id}[/verb]" into (id, verb); verb is "" for the bare
/// session resource.
std::pair<std::string, std::string> split_session_target(
    std::string_view target) {
  constexpr std::string_view prefix = "/sessions/";
  target.remove_prefix(prefix.size());
  const std::size_t slash = target.find('/');
  if (slash == std::string_view::npos) {
    return {std::string(target), std::string()};
  }
  return {std::string(target.substr(0, slash)),
          std::string(target.substr(slash + 1))};
}

}  // namespace

serve_app::serve_app(const serve_config& config,
                     std::unique_ptr<session_store> store)
    : config_(config),
      sessions_(kernels_, config.max_sessions),
      scheduler_(config.threads, config.chunk),
      store_(std::move(store)) {
  if (store_ == nullptr && !config_.store_dir.empty()) {
    store_ = make_fs_store(config_.store_dir, config_.faults);
  }
  if (store_ != nullptr) recover_from_store();
}

void serve_app::recover_from_store() {
  for (store_file& file : store_->scan().sessions) {
    try {
      auto session = sessions_.adopt(file.id, file.seed, file.checkpoint);
      session->durable.store(true);
      session->generation.store(file.generation);
      recovered_.fetch_add(1);
    } catch (const std::exception& error) {
      // The envelope parsed but the checkpoint inside did not survive the
      // strict restore (or the id collided): quarantine, keep booting.
      (void)store_->quarantine(file.id, error.what());
    }
  }
}

void serve_app::spill_locked(serve_session& session) {
  if (store_ == nullptr || !session.durable.load() ||
      session.degraded.load()) {
    return;
  }
  store_file file;
  file.id = session.id;
  file.generation = session.generation.load() + 1;
  file.seed = session.seed;
  file.checkpoint = save_checkpoint(session.recipe, *session.engine);
  std::string error;
  if (store_->spill(file, &error)) {
    session.generation.store(file.generation);
    session.chunks_since_spill = 0;
  } else {
    session.degraded.store(true);
    degraded_.fetch_add(1);
    std::cerr << "ppg-serve: warning: spill of session " << session.id
              << " failed (" << error
              << "); session degraded to non-durable\n";
  }
}

void serve_app::make_durable(serve_session& session) {
  if (store_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(session.mu);
  session.durable.store(true);
  spill_locked(session);  // generation 1: a crash right now loses nothing
}

void serve_app::drain() {
  for (const auto& session : sessions_.snapshot()) {
    // Blocking lock: an in-flight advance finishes its slices first.
    const std::lock_guard<std::mutex> lock(session->mu);
    if (session->chunks_since_spill > 0 || session->generation.load() == 0) {
      spill_locked(*session);
    }
  }
}

void serve_app::spill_all_unlocked_sessions() {
  for (const auto& session : sessions_.snapshot()) {
    const std::unique_lock<std::mutex> lock(session->mu, std::try_to_lock);
    if (!lock.owns_lock()) continue;  // mid-advance: its last spill stands
    if (session->chunks_since_spill > 0 || session->generation.load() == 0) {
      spill_locked(*session);
    }
  }
}

http_response serve_app::handle(const http_request& request) {
  requests_.fetch_add(1);
  try {
    return route(request);
  } catch (const http_error& error) {
    return error_response(error.status(), error.what());
  } catch (const invariant_error& error) {
    // Every strict-parse failure (malformed recipe, bad checkpoint, wrong
    // JSON shape) surfaces here: the client's input, the client's 400.
    return error_response(400, error.what());
  } catch (const std::exception& error) {
    return error_response(500, error.what());
  }
}

http_response serve_app::route(const http_request& request) {
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") throw http_error(405, "use GET /healthz");
    json body = json::object();
    body["status"] = "ok";
    body["sessions"] = static_cast<std::uint64_t>(sessions_.size());
    return json_response(200, body);
  }
  if (target == "/stats") {
    if (request.method != "GET") throw http_error(405, "use GET /stats");
    return stats();
  }
  if (target == "/sessions") {
    if (request.method != "POST") throw http_error(405, "use POST /sessions");
    return create_session(request);
  }
  if (target == "/sessions/restore") {
    if (request.method != "POST") {
      throw http_error(405, "use POST /sessions/restore");
    }
    return restore_session(request);
  }
  if (target.rfind("/sessions/", 0) == 0) {
    const auto [id, verb] = split_session_target(target);
    if (id.empty()) throw http_error(404, "missing session id");
    if (verb.empty()) {
      if (request.method == "GET") return session_info(*require_session(id));
      if (request.method == "DELETE") return destroy_session(id);
      throw http_error(405, "use GET or DELETE on /sessions/{id}");
    }
    if (verb == "advance") {
      if (request.method != "POST") {
        throw http_error(405, "use POST /sessions/{id}/advance");
      }
      return advance_session(*require_session(id), request);
    }
    if (verb == "census") {
      if (request.method != "GET") {
        throw http_error(405, "use GET /sessions/{id}/census");
      }
      return session_census(*require_session(id));
    }
    if (verb == "checkpoint") {
      if (request.method != "GET") {
        throw http_error(405, "use GET /sessions/{id}/checkpoint");
      }
      return session_checkpoint(*require_session(id));
    }
    throw http_error(404, "unknown session resource '" + verb + "'");
  }
  throw http_error(404, "no route for '" + target + "'");
}

json serve_app::parse_body(const http_request& request) const {
  if (request.body.empty()) {
    throw http_error(400, "this endpoint requires a JSON body");
  }
  json::parse_limits limits;
  limits.max_bytes = config_.max_body_bytes;
  limits.max_depth = config_.max_json_depth;
  return json::parse(request.body, limits);
}

std::shared_ptr<serve_session> serve_app::require_session(
    const std::string& id) {
  auto session = sessions_.find(id);
  if (session == nullptr) {
    throw http_error(404, "no session '" + id + "'");
  }
  return session;
}

namespace {

/// Shared session fields of the create / restore / info responses.
json session_summary(const serve_session& session) {
  json body = json::object();
  body["id"] = session.id;
  body["engine"] = engine_kind_name(session.kind);
  body["state"] = session_state_name(session.state.load());
  body["fingerprint"] = session.fingerprint;
  body["kernel_cache_hit"] = session.kernel_cache_hit;
  body["restored"] = session.restored;
  body["recovered"] = session.recovered;
  body["durable"] = session.durable.load() && !session.degraded.load();
  body["generation"] = session.generation.load();
  body["interactions"] = session.interactions.load();
  return body;
}

}  // namespace

http_response serve_app::create_session(const http_request& request) {
  const json body = parse_body(request);
  const char* where = "create session";
  PPG_CHECK(body.is_object(), "create session: body must be a JSON object");
  for (const auto& [key, value] : body.members()) {
    (void)value;
    PPG_CHECK(key == "recipe" || key == "engine" || key == "seed",
              "create session: unknown key '" + key +
                  "' (accepted: recipe, engine, seed)");
  }
  const json& recipe = json_require(body, "recipe", where);
  const engine_kind kind =
      engine_kind_from_name(json_require_string(body, "engine", where));
  std::uint64_t seed = 0;
  if (const json* given = body.find("seed")) {
    PPG_CHECK(given->is_exact_uint(),
              "create session: seed must be an unsigned integer");
    seed = given->as_uint64();
  }
  auto session = sessions_.create(recipe, kind, seed);
  make_durable(*session);
  json response = session_summary(*session);
  response["population"] = session->engine->population_size();
  return json_response(201, response);
}

http_response serve_app::restore_session(const http_request& request) {
  auto session = sessions_.restore(parse_body(request));
  make_durable(*session);
  json response = session_summary(*session);
  response["population"] = session->engine->population_size();
  return json_response(201, response);
}

http_response serve_app::advance_session(serve_session& session,
                                         const http_request& request) {
  const json body = parse_body(request);
  json_require_keys(body, {"interactions"}, "advance");
  const std::uint64_t budget =
      json_require_uint(body, "interactions", "advance");
  PPG_CHECK(budget >= 1, "advance: interactions must be >= 1");

  std::unique_lock<std::mutex> lock(session.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    throw http_error(409, "session '" + session.id +
                              "' is busy; retry when its advance completes");
  }
  if (session.state.load() == session_state::destroyed) {
    throw http_error(404, "session '" + session.id + "' was destroyed");
  }
  session.state.store(session_state::advancing);
  std::uint64_t slices = 0;
  try {
    // The budget is split at multiples of the scheduler chunk, so the slice
    // schedule — and therefore the trajectory (DESIGN.md §9) — is identical
    // to an unsplit advance; the spill between pieces observes exactly the
    // state an uninterrupted run passes through.
    const std::uint64_t chunk = scheduler_.chunk();
    const bool spilling = store_ != nullptr && session.durable.load() &&
                          !session.degraded.load();
    const std::uint64_t stride =
        spilling && config_.spill_every_chunks > 0
            ? config_.spill_every_chunks * chunk
            : 0;
    std::uint64_t remaining = budget;
    while (remaining > 0) {
      const std::uint64_t piece =
          stride == 0 ? remaining : std::min(remaining, stride);
      slices += scheduler_.advance(*session.engine, piece);
      remaining -= piece;
      if (spilling) {
        session.chunks_since_spill += (piece + chunk - 1) / chunk;
        if (stride != 0 &&
            session.chunks_since_spill >= config_.spill_every_chunks) {
          spill_locked(session);
        }
      }
      if (config_.faults != nullptr) {
        const std::uint64_t abort_at = config_.faults->abort_at_interactions();
        if (abort_at != 0 && session.engine->interactions() >= abort_at) {
          std::abort();  // injected crash (the recovery gate reboots us)
        }
      }
    }
  } catch (...) {
    session.state.store(session_state::idle);
    throw;
  }
  session.state.store(session_state::idle);
  session.advances.fetch_add(1);
  session.slices.fetch_add(slices);
  session.interactions.store(session.engine->interactions());
  if (session.chunks_since_spill > 0) {
    spill_locked(session);  // advancing → idle: the spill that makes an
                            // idle session always recoverable as-is
  }

  json response = json::object();
  response["id"] = session.id;
  response["advanced"] = budget;
  response["slices"] = slices;
  response["interactions"] = session.engine->interactions();
  return json_response(200, response);
}

http_response serve_app::session_info(const serve_session& session) {
  json body = session_summary(session);
  body["seed"] = session.seed;
  body["advances"] = session.advances.load();
  body["slices"] = session.slices.load();
  return json_response(200, body);
}

http_response serve_app::session_census(serve_session& session) {
  std::unique_lock<std::mutex> lock(session.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    throw http_error(409, "session '" + session.id + "' is busy");
  }
  if (session.state.load() == session_state::destroyed) {
    throw http_error(404, "session '" + session.id + "' was destroyed");
  }
  const census_view view = session.engine->census();
  json body = json::object();
  body["id"] = session.id;
  body["interactions"] = session.engine->interactions();
  body["population"] = view.population_size();
  body["counts"] = json_uint_array(view.counts());
  return json_response(200, body);
}

http_response serve_app::session_checkpoint(serve_session& session) {
  std::unique_lock<std::mutex> lock(session.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    throw http_error(409, "session '" + session.id + "' is busy");
  }
  if (session.state.load() == session_state::destroyed) {
    throw http_error(404, "session '" + session.id + "' was destroyed");
  }
  // The response body IS the checkpoint document — byte-identical to what
  // save_checkpoint + dump would write to a file, so a client can pipe it
  // straight to disk or back into POST /sessions/restore.
  http_response response;
  response.body =
      save_checkpoint(session.recipe, *session.engine).dump_string(true);
  return response;
}

http_response serve_app::destroy_session(const std::string& id) {
  if (!sessions_.destroy(id)) {
    throw http_error(404, "no session '" + id + "'");
  }
  if (store_ != nullptr) store_->remove(id);
  json body = json::object();
  body["id"] = id;
  body["destroyed"] = true;
  return json_response(200, body);
}

http_response serve_app::stats() {
  json body = json::object();
  body["requests"] = requests_.load();
  body["queue_depth"] = static_cast<std::uint64_t>(scheduler_.queued());
  body["active_slices"] = static_cast<std::uint64_t>(scheduler_.active());

  json scheduler = json::object();
  scheduler["threads"] = static_cast<std::uint64_t>(scheduler_.threads());
  scheduler["chunk"] = scheduler_.chunk();
  body["scheduler"] = std::move(scheduler);

  json cache = json::object();
  cache["entries"] = static_cast<std::uint64_t>(kernels_.size());
  cache["hits"] = kernels_.hits();
  cache["misses"] = kernels_.misses();
  body["kernel_cache"] = std::move(cache);

  json durability = json::object();
  durability["enabled"] = store_ != nullptr;
  durability["recovered_sessions"] = recovered_.load();
  durability["degraded_sessions"] = degraded_.load();
  if (store_ != nullptr) {
    const json store_stats = store_->stats();
    for (const auto& [key, value] : store_stats.members()) {
      durability[key] = value;
    }
  }
  body["durability"] = std::move(durability);

  json sessions = json::array();
  for (const auto& session : sessions_.snapshot()) {
    json entry = session_summary(*session);
    entry["advances"] = session->advances.load();
    entry["slices"] = session->slices.load();
    sessions.push_back(std::move(entry));
  }
  body["sessions"] = std::move(sessions);
  return json_response(200, body);
}

http_server::http_server(serve_app& app, const serve_config& config)
    : app_(&app), config_(config) {}

http_server::~http_server() { stop(); }

void http_server::start() {
  listener_ = std::make_unique<tcp_listener>(config_.port);
  acceptor_ = std::thread([this] { accept_loop(); });
  const std::size_t workers =
      config_.connection_threads == 0 ? 1 : config_.connection_threads;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { connection_loop(); });
  }
}

void http_server::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listener_) listener_->shut_down();
  if (acceptor_.joinable()) acceptor_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // SHUT_RD (not RDWR): a worker parked in recv() unblocks with EOF, but
    // an in-flight response still reaches its client — stop() during a
    // graceful drain never truncates an answer already being written.
    for (const int fd : open_) ::shutdown(fd, SHUT_RD);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
    pending_ready_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void http_server::accept_loop() {
  for (;;) {
    const int fd = listener_->accept_connection();
    if (fd < 0) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    pending_ready_.notify_one();
  }
}

void http_server::connection_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_ready_.wait(lock,
                          [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
      open_.insert(fd);
    }
    serve_connection(fd);
    const std::lock_guard<std::mutex> lock(mutex_);
    open_.erase(fd);
  }
}

void http_server::serve_connection(int fd) {
  http_limits limits;
  limits.max_body_bytes = config_.max_body_bytes;
  limits.read_timeout_ms = config_.read_timeout_ms;
  limits.write_timeout_ms = config_.write_timeout_ms;
  http_connection connection(fd, limits, config_.faults);
  for (;;) {
    std::optional<http_request> request;
    try {
      request = connection.read_request();
    } catch (const http_error& error) {
      // The request never reached the app; answer with the parse failure
      // and drop the connection (its framing state is unknown).
      json body = json::object();
      body["error"] = std::string(error.what());
      http_response response;
      response.status = error.status();
      response.body = body.dump_string(false);
      connection.write_response(response, /*keep_alive=*/false);
      return;
    } catch (...) {
      return;
    }
    if (!request.has_value()) return;  // clean EOF
    const bool keep = request->keep_alive();
    const http_response response = app_->handle(*request);
    if (!connection.write_response(response, keep)) return;
    if (!keep) return;
  }
}

}  // namespace ppg
