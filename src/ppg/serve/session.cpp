#include "ppg/serve/session.hpp"

#include <cstdlib>
#include <utility>

#include "ppg/serve/http.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

/// The kernel-cache key for a recipe: the fingerprint of its *protocol*
/// subdocument only, so sessions differing in census, sampling, or seed
/// still share the compiled kernel.
std::uint64_t protocol_key(const json& recipe_doc) {
  return json_fingerprint(
      json_require(recipe_doc, "protocol", "sim_recipe"));
}

}  // namespace

const char* session_state_name(session_state state) {
  switch (state) {
    case session_state::created:
      return "created";
    case session_state::advancing:
      return "advancing";
    case session_state::idle:
      return "idle";
    case session_state::destroyed:
      return "destroyed";
  }
  return "unknown";
}

std::shared_ptr<serve_session> session_table::create(const json& recipe_doc,
                                                     engine_kind kind,
                                                     std::uint64_t seed) {
  sim_recipe recipe = sim_recipe::from_json(recipe_doc);
  const std::uint64_t fingerprint = recipe_fingerprint(recipe);

  std::shared_ptr<const kernel_table> kernel;
  bool warm = false;
  if (kind != engine_kind::agent && recipe.proto().has_kernel()) {
    auto found = kernels_->get_or_compile(protocol_key(recipe.to_json()),
                                          recipe.proto());
    kernel = std::move(found.kernel);
    warm = found.hit;
  }

  rng gen(seed);
  auto session =
      std::make_shared<serve_session>("", std::move(recipe), kind, seed);
  session->fingerprint = fingerprint;
  session->kernel_cache_hit = warm;
  session->engine =
      session->recipe.spec().make_engine(kind, gen, std::move(kernel));
  session->interactions.store(session->engine->interactions());
  return insert(std::move(session));
}

std::shared_ptr<serve_session> session_table::restore(const json& checkpoint) {
  return insert(build_restored(checkpoint));
}

std::shared_ptr<serve_session> session_table::adopt(const std::string& id,
                                                    std::uint64_t seed,
                                                    const json& checkpoint) {
  PPG_CHECK(!id.empty(), "adopt: empty session id");
  auto session = build_restored(checkpoint);
  session->seed = seed;
  session->recovered = true;
  return insert(std::move(session), id);
}

std::shared_ptr<serve_session> session_table::build_restored(
    const json& checkpoint) {
  // Resolve the shared kernel *before* restore_checkpoint so a restored
  // session joins the same warm-cache economy as a created one.
  const json& spec = json_require(checkpoint, "spec", "checkpoint");
  const json& snapshot = json_require(checkpoint, "engine", "checkpoint");
  const engine_kind kind = engine_kind_from_name(
      json_require_string(snapshot, "engine", "engine snapshot"));

  std::shared_ptr<const kernel_table> kernel;
  bool warm = false;
  if (kind != engine_kind::agent) {
    // A probe recipe only to reach the protocol object for compilation; the
    // session's own recipe is rebuilt by restore_checkpoint below.
    const sim_recipe probe = sim_recipe::from_json(spec);
    if (probe.proto().has_kernel()) {
      auto found =
          kernels_->get_or_compile(protocol_key(spec), probe.proto());
      kernel = std::move(found.kernel);
      warm = found.hit;
    }
  }

  restored_sim restored = restore_checkpoint(checkpoint, std::move(kernel));
  const std::uint64_t fingerprint = recipe_fingerprint(restored.recipe);
  auto session = std::make_shared<serve_session>(
      "", std::move(restored.recipe), kind, /*rng_seed=*/0);
  session->fingerprint = fingerprint;
  session->kernel_cache_hit = warm;
  session->restored = true;
  session->engine = std::move(restored.engine);
  session->interactions.store(session->engine->interactions());
  return session;
}

std::shared_ptr<serve_session> session_table::insert(
    std::shared_ptr<serve_session> session, const std::string& forced_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= max_sessions_) {
    throw http_error(503, "session table full (" +
                              std::to_string(max_sessions_) +
                              " sessions); destroy one first");
  }
  if (forced_id.empty()) {
    session->id = "s" + std::to_string(next_id_++);
  } else {
    for (const auto& existing : sessions_) {
      PPG_CHECK(existing->id != forced_id,
                "adopt: session id '" + forced_id + "' already exists");
    }
    session->id = forced_id;
    // Keep the generator ahead of any adopted "s<n>" id so future creates
    // never collide with a recovered session.
    if (forced_id.size() > 1 && forced_id[0] == 's' &&
        forced_id.find_first_not_of("0123456789", 1) == std::string::npos) {
      const std::uint64_t numeric =
          std::strtoull(forced_id.c_str() + 1, nullptr, 10);
      if (numeric >= next_id_) next_id_ = numeric + 1;
    }
  }
  sessions_.push_back(session);
  return session;
}

std::shared_ptr<serve_session> session_table::find(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& session : sessions_) {
    if (session->id == id) return session;
  }
  return nullptr;
}

bool session_table::destroy(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if ((*it)->id == id) {
      (*it)->state.store(session_state::destroyed);
      sessions_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::shared_ptr<serve_session>> session_table::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_;
}

std::size_t session_table::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace ppg
