#include "ppg/serve/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "ppg/util/error.hpp"

namespace ppg {
namespace {

/// One in-flight advance: the engine, the remaining budget, and the
/// completion latch the calling thread blocks on. The job lives on the
/// caller's stack — pump() re-submits itself until the budget is spent,
/// then signals done, and only then does advance() return.
struct advance_job {
  sim_engine* engine = nullptr;
  std::uint64_t remaining = 0;
  std::uint64_t chunk = 0;
  std::uint64_t slices = 0;

  std::mutex mutex;
  std::condition_variable finished;
  bool done = false;
  std::exception_ptr error;
};

void pump(thread_pool& pool, advance_job& job) {
  pool.submit([&pool, &job] {
    try {
      const std::uint64_t slice = std::min(job.chunk, job.remaining);
      job.engine->run(slice);
      job.remaining -= slice;
      ++job.slices;
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.mutex);
      job.error = std::current_exception();
      job.done = true;
      job.finished.notify_one();
      return;
    }
    if (job.remaining > 0) {
      // Back of the FIFO queue: every other waiting session's slice runs
      // before this session's next one — the fairness mechanism.
      pump(pool, job);
      return;
    }
    const std::lock_guard<std::mutex> lock(job.mutex);
    job.done = true;
    job.finished.notify_one();
  });
}

}  // namespace

fair_scheduler::fair_scheduler(std::size_t threads, std::uint64_t chunk)
    : chunk_(chunk), pool_(threads) {
  PPG_CHECK(chunk_ > 0, "fair_scheduler: chunk must be positive");
}

std::uint64_t fair_scheduler::advance(sim_engine& engine,
                                      std::uint64_t budget) {
  if (budget == 0) return 0;
  advance_job job;
  job.engine = &engine;
  job.remaining = budget;
  job.chunk = chunk_;
  pump(pool_, job);
  std::unique_lock<std::mutex> lock(job.mutex);
  job.finished.wait(lock, [&job] { return job.done; });
  if (job.error) std::rethrow_exception(job.error);
  return job.slices;
}

}  // namespace ppg
