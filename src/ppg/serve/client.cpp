#include "ppg/serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace ppg {
namespace {

std::int64_t monotonic_ms() {
  timespec now{};
  clock_gettime(CLOCK_MONOTONIC, &now);
  return static_cast<std::int64_t>(now.tv_sec) * 1000 +
         now.tv_nsec / 1'000'000;
}

void sleep_ms(int ms) {
  if (ms <= 0) return;
  timespec nap{};
  nap.tv_sec = ms / 1000;
  nap.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000;
  nanosleep(&nap, nullptr);
}

std::string ascii_lower(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return text;
}

std::string trim(std::string text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t')) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

http_client::http_client(const client_config& config) : config_(config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw client_error(std::string("socket(): ") + std::strerror(errno),
                       /*request_sent=*/false);
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    throw client_error("bad host '" + config_.host +
                           "' (IPv4 dotted quad only)",
                       /*request_sent=*/false);
  }

  // Nonblocking connect bounded by connect_timeout_ms, then back to
  // blocking mode — request deadlines are enforced with poll().
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    if (errno != EINPROGRESS) {
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw client_error("connect: " + what, /*request_sent=*/false);
    }
    pollfd waiter{};
    waiter.fd = fd;
    waiter.events = POLLOUT;
    const int ready = ::poll(&waiter, 1, config_.connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      throw client_error("connect timed out after " +
                             std::to_string(config_.connect_timeout_ms) +
                             "ms",
                         /*request_sent=*/false);
    }
    int error = 0;
    socklen_t error_size = sizeof(error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_size);
    if (error != 0) {
      ::close(fd);
      throw client_error(std::string("connect: ") + std::strerror(error),
                         /*request_sent=*/false);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  fd_ = fd;
}

http_client::~http_client() { close_fd(); }

void http_client::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int http_client::remaining_ms(std::int64_t deadline_ms) const {
  const std::int64_t left = deadline_ms - monotonic_ms();
  if (left <= 0) return 0;
  if (left > 3'600'000) return 3'600'000;
  return static_cast<int>(left);
}

client_response http_client::request(const std::string& method,
                                     const std::string& target,
                                     const std::string& body) {
  if (fd_ < 0) {
    throw client_error("connection is closed", /*request_sent=*/false);
  }
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + config_.host + "\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: keep-alive\r\n\r\n";
  wire += body;

  const std::int64_t deadline = monotonic_ms() + config_.request_timeout_ms;
  bool sent = false;
  std::size_t written = 0;
  while (written < wire.size()) {
    pollfd waiter{};
    waiter.fd = fd_;
    waiter.events = POLLOUT;
    const int ready = ::poll(&waiter, 1, remaining_ms(deadline));
    if (ready == 0) {
      close_fd();
      throw client_error("request deadline exceeded while writing", sent);
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      close_fd();
      throw client_error(std::string("poll: ") + std::strerror(errno), sent);
    }
    const ssize_t wrote = ::send(fd_, wire.data() + written,
                                 wire.size() - written, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      close_fd();
      throw client_error(std::string("send: ") + std::strerror(errno), sent);
    }
    if (wrote > 0) sent = true;
    written += static_cast<std::size_t>(wrote);
  }

  // From here every failure reports sent=true: the server saw the request.
  const auto fill = [&] {
    pollfd waiter{};
    waiter.fd = fd_;
    waiter.events = POLLIN;
    for (;;) {
      const int ready = ::poll(&waiter, 1, remaining_ms(deadline));
      if (ready == 0) {
        close_fd();
        throw client_error("request deadline exceeded while reading", true);
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        close_fd();
        throw client_error(std::string("poll: ") + std::strerror(errno),
                           true);
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(got));
        return;
      }
      if (got == 0) {
        close_fd();
        throw client_error("connection closed mid-response", true);
      }
      if (errno == EINTR) continue;
      close_fd();
      throw client_error(std::string("recv: ") + std::strerror(errno), true);
    }
  };

  std::size_t head_end = std::string::npos;
  for (;;) {
    head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer_.size() > config_.max_response_bytes) {
      close_fd();
      throw client_error("response head too large", true);
    }
    fill();
  }
  const std::string head = buffer_.substr(0, head_end);

  // Status line: HTTP/1.1 NNN Reason
  const std::size_t space = head.find(' ');
  if (head.compare(0, 5, "HTTP/") != 0 || space == std::string::npos) {
    close_fd();
    throw client_error("malformed status line", true);
  }
  const int status = std::atoi(head.c_str() + space + 1);
  if (status < 100 || status > 599) {
    close_fd();
    throw client_error("malformed status line", true);
  }

  std::size_t body_size = 0;
  bool close_after = false;
  std::size_t pos = head.find("\r\n");
  pos = pos == std::string::npos ? head.size() : pos + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = ascii_lower(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));
    if (key == "content-length") {
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), nullptr, 10);
      if (errno != 0 || parsed > config_.max_response_bytes) {
        close_fd();
        throw client_error("response body too large", true);
      }
      body_size = static_cast<std::size_t>(parsed);
    } else if (key == "connection" && ascii_lower(value) == "close") {
      close_after = true;
    }
  }

  buffer_.erase(0, head_end + 4);
  while (buffer_.size() < body_size) fill();

  client_response response;
  response.status = status;
  response.body = buffer_.substr(0, body_size);
  buffer_.erase(0, body_size);
  if (close_after) close_fd();
  return response;
}

serve_client::serve_client(const client_config& config)
    : config_(config), jitter_(config.jitter_seed) {}

client_response serve_client::request(const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      bool idempotent) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (connection_ == nullptr || !connection_->alive()) {
        connection_ = std::make_unique<http_client>(config_);
        ++stats_.reconnects;
      }
      ++stats_.requests;
      return connection_->request(method, target, body);
    } catch (const client_error& error) {
      connection_.reset();
      if (error.sent() && !idempotent) throw;
      if (attempt >= config_.max_retries) throw;
      ++stats_.retries;
      // Capped exponential backoff with jitter in [0.5, 1.0) of the step —
      // seeded, so a test's retry schedule is reproducible.
      const int shift = attempt < 16 ? static_cast<int>(attempt) : 16;
      std::int64_t step = static_cast<std::int64_t>(config_.backoff_initial_ms)
                          << shift;
      if (step > config_.backoff_cap_ms) step = config_.backoff_cap_ms;
      sleep_ms(static_cast<int>(
          static_cast<double>(step) * (0.5 + 0.5 * jitter_.next_double())));
    }
  }
}

session_handle session_handle::create(serve_client& client, const json& recipe,
                                      const std::string& engine,
                                      std::uint64_t seed) {
  json body = json::object();
  body["recipe"] = recipe;
  body["engine"] = engine;
  body["seed"] = seed;
  const client_response created =
      client.request("POST", "/sessions", body.dump_string(false),
                     /*idempotent=*/false);
  if (created.status != 201) {
    throw client_error("create session failed: HTTP " +
                           std::to_string(created.status) + " " + created.body,
                       /*request_sent=*/true);
  }
  const json doc = json::parse(created.body);
  session_handle handle(client,
                        json_require_string(doc, "id", "create response"),
                        json_require_uint(doc, "interactions",
                                          "create response"));
  handle.refresh_checkpoint();
  return handle;
}

void session_handle::refresh_checkpoint() {
  client_response response =
      client_->request("GET", "/sessions/" + id_ + "/checkpoint");
  if (response.status == 404 && !checkpoint_.is_null()) {
    recover();
    response = client_->request("GET", "/sessions/" + id_ + "/checkpoint");
  }
  if (response.status != 200) {
    throw client_error("checkpoint fetch failed: HTTP " +
                           std::to_string(response.status) + " " +
                           response.body,
                       /*request_sent=*/true);
  }
  checkpoint_ = json::parse(response.body);
}

std::uint64_t session_handle::reconcile() {
  const client_response response =
      client_->request("GET", "/sessions/" + id_);
  if (response.status == 404) {
    recover();
    return interactions_;
  }
  if (response.status != 200) {
    throw client_error("reconcile failed: HTTP " +
                           std::to_string(response.status) + " " +
                           response.body,
                       /*request_sent=*/true);
  }
  return json_require_uint(json::parse(response.body), "interactions",
                           "session info");
}

void session_handle::recover() {
  if (checkpoint_.is_null()) {
    throw client_error("session '" + id_ +
                           "' is gone and no checkpoint was ever fetched",
                       /*request_sent=*/true);
  }
  // Restore-by-checkpoint is effectively idempotent for the handle: a
  // duplicated restore leaves an orphan session but the handle adopts
  // exactly one id, so it is safe to retry blindly.
  const client_response response =
      client_->request("POST", "/sessions/restore",
                       checkpoint_.dump_string(false), /*idempotent=*/true);
  if (response.status != 201) {
    throw client_error("restore failed: HTTP " +
                           std::to_string(response.status) + " " +
                           response.body,
                       /*request_sent=*/true);
  }
  const json doc = json::parse(response.body);
  id_ = json_require_string(doc, "id", "restore response");
  interactions_ =
      json_require_uint(doc, "interactions", "restore response");
  ++recoveries_;
}

void session_handle::advance(std::uint64_t interactions) {
  const std::uint64_t target = interactions_ + interactions;
  while (interactions_ < target) {
    json body = json::object();
    body["interactions"] = target - interactions_;
    client_response response;
    try {
      response = client_->request("POST", "/sessions/" + id_ + "/advance",
                                  body.dump_string(false),
                                  /*idempotent=*/false);
    } catch (const client_error&) {
      // The daemon vanished mid-advance (or the attempt may have executed
      // before the connection tore). Reconcile against whatever answers
      // now — possibly a rebooted daemon holding the last spilled state —
      // and re-issue exactly the missing interactions.
      interactions_ = reconcile();
      continue;
    }
    if (response.status == 404) {
      recover();
      continue;
    }
    if (response.status == 409) {
      sleep_ms(client_->config().backoff_initial_ms);  // busy: try again
      continue;
    }
    if (response.status != 200) {
      throw client_error("advance failed: HTTP " +
                             std::to_string(response.status) + " " +
                             response.body,
                         /*request_sent=*/true);
    }
    interactions_ = json_require_uint(json::parse(response.body),
                                      "interactions", "advance response");
  }
}

}  // namespace ppg
