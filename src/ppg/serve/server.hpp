// The ppg-serve application and its HTTP front end.
//
// serve_app is the transport-free core: a thread-safe handle(request) →
// response router over the session table, kernel cache, and fair
// scheduler. Tests drive it directly (no sockets, no timing); the daemon
// and the socket smoke test wrap it in http_server, which owns the
// listener, an acceptor thread, and a small pool of connection threads
// running keep-alive loops.
//
// Wire protocol (all bodies JSON; see DESIGN.md §10 and README):
//   POST   /sessions            {"recipe": {...}, "engine": "...",
//                                "seed": u64?}      → 201 {id, ...}
//   POST   /sessions/restore    checkpoint document → 201 {id, ...}
//   POST   /sessions/{id}/advance  {"interactions": u64 >= 1}
//   GET    /sessions/{id}          session info
//   GET    /sessions/{id}/census   current counts
//   GET    /sessions/{id}/checkpoint  byte-identical to save_checkpoint
//   DELETE /sessions/{id}          destroy (second delete → 404)
//   GET    /healthz, GET /stats
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ppg/serve/faults.hpp"
#include "ppg/serve/http.hpp"
#include "ppg/serve/kernel_cache.hpp"
#include "ppg/serve/scheduler.hpp"
#include "ppg/serve/session.hpp"
#include "ppg/serve/store.hpp"

namespace ppg {

struct serve_config {
  std::uint16_t port = 0;       ///< 0 = kernel-assigned ephemeral port
  std::size_t threads = 0;      ///< scheduler workers; 0 = hardware conc.
  std::size_t connection_threads = 4;
  std::uint64_t chunk = std::uint64_t{1} << 16;  ///< scheduler slice bound
  std::size_t max_sessions = 1024;
  std::size_t max_body_bytes = 4u * 1024 * 1024;
  std::size_t max_json_depth = 64;

  // Durability (DESIGN.md §13). With `store_dir` set, every session is
  // spilled to disk — at creation, every `spill_every_chunks` scheduler
  // chunks during an advance, and on every advancing → idle transition —
  // and the daemon restores all spilled sessions under their original ids
  // on boot. Empty = the pre-§13 in-memory-only behavior.
  std::string store_dir;
  std::uint64_t spill_every_chunks = 16;  ///< 0 = spill only on idle/drain

  // Connection deadlines (0 = none): an idle keep-alive connection past
  // the read deadline is reaped; a peer stalled mid-request gets 408; a
  // peer that stops reading its response is dropped after the write
  // deadline.
  int read_timeout_ms = 30'000;
  int write_timeout_ms = 30'000;

  /// Deterministic fault schedule for the store and socket paths
  /// (tests/chaos tooling); nullptr = no injected faults.
  std::shared_ptr<fault_plan> faults;
};

/// The routing core. handle() is safe to call from any number of threads
/// concurrently; per-session exclusivity is enforced with try_lock (a busy
/// session answers 409 immediately).
class serve_app {
 public:
  /// `store` overrides the store built from config.store_dir (injection
  /// point for tests); with both empty/null the app is non-durable. When a
  /// store is present the constructor scans it and restores every valid
  /// spill under its original session id; corrupt spills are quarantined,
  /// never fatal.
  explicit serve_app(const serve_config& config = {},
                     std::unique_ptr<session_store> store = nullptr);

  [[nodiscard]] http_response handle(const http_request& request);

  /// Graceful-shutdown spill: waits for each session's in-flight advance
  /// (blocking lock) and spills its latest state. Call after the HTTP
  /// front end has stopped accepting.
  void drain();

  /// Forced-shutdown spill: spills every session that is not mid-advance
  /// (try_lock, busy sessions skipped — their last periodic spill stands).
  /// Safe to call concurrently with drain().
  void spill_all_unlocked_sessions();

  [[nodiscard]] const serve_config& config() const { return config_; }
  [[nodiscard]] session_table& sessions() { return sessions_; }
  [[nodiscard]] kernel_cache& kernels() { return kernels_; }
  [[nodiscard]] fair_scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] session_store* store() { return store_.get(); }

 private:
  [[nodiscard]] http_response route(const http_request& request);
  [[nodiscard]] json parse_body(const http_request& request) const;
  [[nodiscard]] std::shared_ptr<serve_session> require_session(
      const std::string& id);

  [[nodiscard]] http_response create_session(const http_request& request);
  [[nodiscard]] http_response restore_session(const http_request& request);
  [[nodiscard]] http_response advance_session(serve_session& session,
                                              const http_request& request);
  [[nodiscard]] http_response session_info(const serve_session& session);
  [[nodiscard]] http_response session_census(serve_session& session);
  [[nodiscard]] http_response session_checkpoint(serve_session& session);
  [[nodiscard]] http_response destroy_session(const std::string& id);
  [[nodiscard]] http_response stats();

  /// Recovers every valid spill from the store (constructor path).
  void recover_from_store();
  /// Spills `session`'s current state; caller holds session.mu. A failed
  /// spill degrades the session to non-durable (with a warning) instead of
  /// failing the request — the daemon outlives its disk.
  void spill_locked(serve_session& session);
  /// Marks a fresh session durable and writes its generation-1 spill.
  void make_durable(serve_session& session);

  serve_config config_;
  kernel_cache kernels_;
  session_table sessions_;
  fair_scheduler scheduler_;
  std::unique_ptr<session_store> store_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> recovered_{0};  ///< sessions restored at boot
  std::atomic<std::uint64_t> degraded_{0};   ///< sessions that lost durability
};

/// The socket front end: accepts connections on 127.0.0.1:port and feeds
/// keep-alive request loops to `connection_threads` workers. start()
/// returns once the listener is bound (port() is then valid); stop() is
/// idempotent and joins every thread.
class http_server {
 public:
  http_server(serve_app& app, const serve_config& config);
  ~http_server();

  http_server(const http_server&) = delete;
  http_server& operator=(const http_server&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_->port(); }

 private:
  void accept_loop();
  void connection_loop();
  void serve_connection(int fd);

  serve_app* app_;
  serve_config config_;
  std::unique_ptr<tcp_listener> listener_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable pending_ready_;
  std::deque<int> pending_;    ///< accepted fds awaiting a worker
  std::set<int> open_;         ///< fds currently inside serve_connection
  bool stopping_ = false;
};

}  // namespace ppg
