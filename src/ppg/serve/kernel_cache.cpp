#include "ppg/serve/kernel_cache.hpp"

namespace ppg {

kernel_cache::lookup kernel_cache::get_or_compile(std::uint64_t key,
                                                  const protocol& proto) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = table_.find(key);
  if (found != table_.end()) {
    ++hits_;
    return {found->second, true};
  }
  ++misses_;
  auto kernel = std::make_shared<const kernel_table>(proto);
  table_.emplace(key, kernel);
  return {std::move(kernel), false};
}

std::size_t kernel_cache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

std::uint64_t kernel_cache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t kernel_cache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace ppg
