#include "ppg/serve/faults.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "ppg/util/atomic_file.hpp"
#include "ppg/util/error.hpp"

namespace ppg {
namespace {

fault_action fault_action_from_name(const std::string& name) {
  if (name == "eio") return fault_action::fail_eio;
  if (name == "enospc") return fault_action::fail_enospc;
  if (name == "short") return fault_action::short_op;
  if (name == "torn") return fault_action::torn_rename;
  if (name == "abort") return fault_action::abort_now;
  throw invariant_error("fault plan: unknown action '" + name +
                        "' (accepted: eio, enospc, short, torn, abort)");
}

}  // namespace

const char* fault_action_name(fault_action action) {
  switch (action) {
    case fault_action::none:
      return "none";
    case fault_action::fail_eio:
      return "eio";
    case fault_action::fail_enospc:
      return "enospc";
    case fault_action::short_op:
      return "short";
    case fault_action::torn_rename:
      return "torn";
    case fault_action::abort_now:
      return "abort";
  }
  return "unknown";
}

std::shared_ptr<fault_plan> fault_plan::parse(const json& doc) {
  PPG_CHECK(doc.is_object(), "fault plan: document must be a JSON object");
  auto plan = std::make_shared<fault_plan>();
  std::uint64_t seed = 1;
  for (const auto& [key, value] : doc.members()) {
    if (key == "seed") {
      PPG_CHECK(value.is_exact_uint(),
                "fault plan: seed must be an unsigned integer");
      seed = value.as_uint64();
    } else if (key == "abort_at_interactions") {
      PPG_CHECK(value.is_exact_uint(),
                "fault plan: abort_at_interactions must be an unsigned "
                "integer");
      plan->abort_at_ = value.as_uint64();
    } else if (key == "rules") {
      PPG_CHECK(value.is_array(), "fault plan: rules must be an array");
      for (const json& entry : value.items()) {
        json_require_keys(entry, {"site", "nth", "action"},
                          "fault plan rule");
        fault_rule rule;
        rule.site = json_require_string(entry, "site", "fault plan rule");
        rule.nth = json_require_uint(entry, "nth", "fault plan rule");
        PPG_CHECK(rule.nth >= 1, "fault plan: nth is 1-based (>= 1)");
        rule.action = fault_action_from_name(
            json_require_string(entry, "action", "fault plan rule"));
        plan->rules_.push_back(std::move(rule));
      }
    } else {
      throw invariant_error("fault plan: unknown key '" + key +
                            "' (accepted: seed, abort_at_interactions, "
                            "rules)");
    }
  }
  plan->jitter_ = rng(seed);
  return plan;
}

fault_action fault_plan::next(const std::string& site) {
  fault_action armed = fault_action::none;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t count = ++counts_[site];
    for (const fault_rule& rule : rules_) {
      if (rule.site == site && rule.nth == count) {
        armed = rule.action;
        ++fired_;
        break;
      }
    }
  }
  if (armed == fault_action::abort_now) std::abort();
  return armed;
}

std::size_t fault_plan::short_size(std::size_t requested) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (requested <= 1) return 1;
  return static_cast<std::size_t>(
      1 + jitter_.next_below(static_cast<std::uint64_t>(requested - 1)));
}

std::uint64_t fault_plan::fired() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

ssize_t faulty_file_ops::write_fd(int fd, const void* data,
                                  std::size_t size) {
  switch (plan_->next("store.write")) {
    case fault_action::fail_eio:
      errno = EIO;
      return -1;
    case fault_action::fail_enospc:
      errno = ENOSPC;
      return -1;
    case fault_action::short_op:
      // A short write is not itself a failure (the caller loops); it
      // exercises the partial-progress path and shifts later op counts.
      return base_->write_fd(fd, data, plan_->short_size(size));
    default:
      return base_->write_fd(fd, data, size);
  }
}

int faulty_file_ops::fsync_fd(int fd) {
  switch (plan_->next("store.fsync")) {
    case fault_action::fail_eio:
      errno = EIO;
      return -1;
    case fault_action::fail_enospc:
      errno = ENOSPC;
      return -1;
    default:
      return base_->fsync_fd(fd);
  }
}

int faulty_file_ops::rename_file(const std::string& from,
                                 const std::string& to) {
  switch (plan_->next("store.rename")) {
    case fault_action::fail_eio:
      errno = EIO;
      return -1;
    case fault_action::fail_enospc:
      errno = ENOSPC;
      return -1;
    case fault_action::torn_rename: {
      // Simulate a crash that committed the rename but not the data: the
      // destination exists with a prefix of the content, the temp is gone.
      std::string bytes;
      std::string error;
      if (!read_file(from, &bytes, &error)) return -1;
      const std::string torn = bytes.substr(0, bytes.size() / 2);
      std::string ignored;
      (void)atomic_write_file(to, torn, &ignored, default_file_ops());
      ::unlink(from.c_str());
      return 0;  // the caller believes the spill landed
    }
    default:
      return base_->rename_file(from, to);
  }
}

}  // namespace ppg
