// Ensemble-backed replication: the replicate_* measurement shapes executed
// on the SoA ensemble engine instead of R separate engines. One kernel, one
// birthday table, contiguous count planes — and the exact batch_runner
// stream law, so the results are *bitwise equal* to the per-engine path
// (replicate_time_averaged_census with engine_kind::multibatch), not merely
// distribution-equal. The per-replica fold still happens in replica order
// on the calling thread, so aggregates are thread-count-independent too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "ppg/exp/aggregator.hpp"
#include "ppg/pp/census.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/pp/ensemble_engine.hpp"
#include "ppg/util/error.hpp"

namespace ppg {

struct ensemble_options {
  /// Number of lockstep replicas R.
  std::size_t replicas = 1;
  /// Master seed; replica r uses the batch_runner stream law.
  std::uint64_t master_seed = 0;
  /// Worker threads advancing replicas; 0 means hardware concurrency.
  std::size_t threads = 0;
};

/// Builds the ensemble for `spec` (same protocol / initial census /
/// sampling, warm kernel honored) with the options' seeding and threading.
[[nodiscard]] inline ensemble_engine make_ensemble(
    const sim_spec& spec, const ensemble_options& opts,
    std::shared_ptr<const kernel_table> kernel = nullptr) {
  ensemble_engine ensemble(spec.proto(), spec.initial_counts(),
                           opts.master_seed, opts.replicas, spec.sampling(),
                           std::move(kernel));
  const std::size_t threads =
      opts.threads != 0
          ? opts.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ensemble.set_threads(threads);
  return ensemble;
}

/// The stationary-census measurement (replicate_time_averaged_census) on
/// the ensemble engine: every replica burns `burn` interactions, then
/// advances one interaction per sample, averaging `project(census)` over
/// the sampled interactions; per-replica means are folded in replica order.
/// Bitwise equal to replicate_time_averaged_census(spec,
/// engine_kind::multibatch, burn, samples, ...) at the same master seed —
/// the replica streams, the chunk schedule (run(burn), then single steps),
/// and the fold order all match.
template <typename Project>
[[nodiscard]] census_aggregator ensemble_time_averaged_census(
    const sim_spec& spec, std::uint64_t burn, std::uint64_t samples,
    const ensemble_options& opts, Project&& project,
    std::shared_ptr<const kernel_table> kernel = nullptr) {
  PPG_CHECK(samples > 0, "need at least one sampled interaction");
  ensemble_engine ensemble = make_ensemble(spec, opts, std::move(kernel));
  ensemble.run(burn);
  std::vector<std::vector<double>> means(opts.replicas);
  for (std::uint64_t i = 0; i < samples; ++i) {
    ensemble.step();
    for (std::size_t r = 0; r < opts.replicas; ++r) {
      const auto counts = ensemble.replica_census(r);
      const census_view view(counts, ensemble.population_size());
      const std::vector<double> value = project(view);
      auto& mean = means[r];
      if (mean.empty()) mean.assign(value.size(), 0.0);
      PPG_CHECK(value.size() == mean.size(),
                "projection width must be constant across samples");
      for (std::size_t j = 0; j < value.size(); ++j) {
        mean[j] += value[j];
      }
    }
  }
  census_aggregator agg;
  for (auto& mean : means) {
    for (auto& x : mean) {
      x /= static_cast<double>(samples);
    }
    agg.add(mean);
  }
  return agg;
}

}  // namespace ppg
