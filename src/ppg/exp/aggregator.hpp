// Mergeable aggregators for batch-replication results: per-coordinate
// summaries of censuses, scalar summaries with full empirical distribution
// (convergence times, payoffs), and time-aligned trajectory bands.
//
// All three compose the ppg::stats accumulators and expose an associative
// merge(), so partial aggregates computed anywhere (another thread, another
// shard, another machine) can be combined; the batch engine itself folds in
// replica order on one thread so aggregates are thread-count independent.
#pragma once

#include <cstddef>
#include <vector>

#include "ppg/stats/ecdf.hpp"
#include "ppg/stats/summary.hpp"

namespace ppg {

/// Aggregates fixed-length real vectors (censuses, level distributions)
/// coordinate by coordinate. The length is fixed by the first add/merge.
class census_aggregator {
 public:
  /// One replica's census.
  void add(const std::vector<double>& census);

  void merge(const census_aggregator& other);

  /// Replicas aggregated so far.
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t dimensions() const { return coords_.size(); }

  /// Per-coordinate means: the batch estimate of E[census].
  [[nodiscard]] std::vector<double> mean() const;

  /// Per-coordinate normal-approximation CI half-widths across replicas.
  [[nodiscard]] std::vector<double> ci_half_width(double z = 1.96) const;

  [[nodiscard]] const running_summary& coordinate(std::size_t j) const;

 private:
  std::vector<running_summary> coords_;
};

/// Aggregates one scalar per replica (a convergence time, a payoff, a TV
/// distance): mean/CI via Welford plus the exact empirical distribution.
class scalar_aggregator {
 public:
  void add(double value);

  void merge(const scalar_aggregator& other);

  [[nodiscard]] std::size_t count() const { return summary_.count(); }
  [[nodiscard]] double mean() const { return summary_.mean(); }
  [[nodiscard]] double std_error() const { return summary_.std_error(); }
  [[nodiscard]] double ci_half_width(double z = 1.96) const {
    return summary_.ci_half_width(z);
  }
  [[nodiscard]] double min() const { return summary_.min(); }
  [[nodiscard]] double max() const { return summary_.max(); }
  [[nodiscard]] double quantile(double q) const {
    return distribution_.quantile(q);
  }

  [[nodiscard]] const running_summary& summary() const { return summary_; }
  [[nodiscard]] const empirical_cdf& distribution() const {
    return distribution_;
  }

 private:
  running_summary summary_;
  empirical_cdf distribution_;
};

/// Aggregates per-replica trajectories sampled at identical time points
/// (payoff or generosity traces): a mean curve with a CI band. The length is
/// fixed by the first add/merge; every trajectory must match it.
class trajectory_aggregator {
 public:
  void add(const std::vector<double>& trajectory);

  void merge(const trajectory_aggregator& other);

  [[nodiscard]] std::size_t count() const { return curve_.count(); }
  [[nodiscard]] std::size_t points() const { return curve_.dimensions(); }
  [[nodiscard]] std::vector<double> mean_curve() const { return curve_.mean(); }
  [[nodiscard]] std::vector<double> ci_band(double z = 1.96) const {
    return curve_.ci_half_width(z);
  }
  [[nodiscard]] const running_summary& at(std::size_t t) const {
    return curve_.coordinate(t);
  }

 private:
  census_aggregator curve_;
};

}  // namespace ppg
