// Resumable replica sweeps: the checkpointable form of a long-horizon
// replicated run. A sweep is R replicas of one sim_recipe on one engine
// kind, replica i seeded by exactly the batch engine's counter-based stream
// law (make_stream_rng(master_seed, i), then sim_spec::make_engine's
// split) — so a sweep that is never checkpointed produces the same
// per-replica trajectories a replicate_* body building
// `spec.make_engine(kind, gen)` would. Unlike batch_runner's run-to-
// completion bodies, the sweep advances its replicas in bounded chunks and
// can serialize the complete state — every replica's engine snapshot, i.e.
// every per-stream RNG position — between chunks; save() → restore()
// through a file continues every replica bit-exactly (same chunk schedule;
// DESIGN.md §9).
//
// Deliberately NOT checkpointed: aggregator partials. Reductions stay
// replayable on the caller's side from the replicas' final censuses —
// checkpointing a half-folded mean would freeze the reduction order into
// the file format for no resume benefit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ppg/pp/checkpoint.hpp"
#include "ppg/pp/engine.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

class resumable_sweep {
 public:
  /// R replicas of recipe.spec() on engine `kind`, each to be advanced to
  /// `horizon` interactions. `threads` bounds the worker pool used by
  /// advance() (0 = hardware concurrency); replica trajectories are
  /// independent streams, so the thread count never changes any result.
  resumable_sweep(sim_recipe recipe, engine_kind kind,
                  std::uint64_t master_seed, std::size_t replicas,
                  std::uint64_t horizon, std::size_t threads = 0);

  resumable_sweep(resumable_sweep&&) = default;
  resumable_sweep& operator=(resumable_sweep&&) = default;

  /// Advances every unfinished replica by min(chunk, its remaining budget)
  /// interactions; returns whether any replica is still unfinished. The
  /// chunk schedule is part of the draw schedule for the aggregated
  /// engines, so a resumed sweep must keep the same chunk size to stay
  /// bit-identical to an uninterrupted one — the same bounded-chunk
  /// discipline ppg-serve's fair_scheduler (serve/scheduler.hpp) applies
  /// to session advances, for the same reason.
  bool advance(std::uint64_t chunk);

  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::size_t replicas() const { return engines_.size(); }
  [[nodiscard]] std::uint64_t horizon() const { return horizon_; }
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }
  [[nodiscard]] engine_kind kind() const { return kind_; }
  [[nodiscard]] const sim_recipe& recipe() const { return recipe_; }
  [[nodiscard]] const sim_engine& replica(std::size_t i) const;

  /// The sweep checkpoint: {"schema_version", "spec", "kind",
  /// "master_seed", "horizon", "replicas": [one engine snapshot each]}.
  /// Self-describing via the embedded spec header, like a single-engine
  /// checkpoint.
  [[nodiscard]] json save() const;

  /// Rebuilds a sweep from save()'s document (fresh process OK); continues
  /// every replica bit-exactly.
  [[nodiscard]] static resumable_sweep restore(const json& doc,
                                               std::size_t threads = 0);

 private:
  sim_recipe recipe_;
  engine_kind kind_;
  std::uint64_t master_seed_;
  std::uint64_t horizon_;
  std::size_t threads_;
  std::vector<std::unique_ptr<sim_engine>> engines_;
};

}  // namespace ppg
