// One-call replicate-and-reduce entry points: the three shapes every
// Monte-Carlo driver in bench/ and examples/ needs. Each runs R replicas on
// the batch engine and folds them, in replica order, into the matching
// aggregator.
//
//   auto agg = replicate_scalar(opts, [&](const replica_context&, rng& gen) {
//     return measure_hitting_time(pop, k, gen);   // one replica
//   });
//   agg.mean(); agg.ci_half_width(); agg.quantile(0.9);
//
// These entry points run each replica to completion inside its body. For
// long-horizon sweeps that must survive interruption, exp/resume.hpp's
// resumable_sweep advances the same per-stream replicas in bounded chunks
// and checkpoints every engine (per-stream RNG positions included) between
// chunks.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ppg/exp/aggregator.hpp"
#include "ppg/exp/batch_runner.hpp"
#include "ppg/pp/engine.hpp"

namespace ppg {

/// Replicates a scalar-valued experiment (body returns double).
template <typename Body>
[[nodiscard]] scalar_aggregator replicate_scalar(const batch_options& opts,
                                                 Body&& body) {
  scalar_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

/// Replicates a census-valued experiment (body returns std::vector<double>
/// of a fixed length).
template <typename Body>
[[nodiscard]] census_aggregator replicate_census(const batch_options& opts,
                                                 Body&& body) {
  census_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

/// Replicates a trajectory-valued experiment (body returns the values of one
/// replica's trace at a fixed shared time grid).
template <typename Body>
[[nodiscard]] trajectory_aggregator replicate_trajectory(
    const batch_options& opts, Body&& body) {
  trajectory_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

/// The stationary-census measurement every E-series bench shares, phrased
/// over the engine API: each replica builds a fresh engine of `kind` from
/// `spec`, burns `burn` interactions, then steps `samples` times, averaging
/// `project(census)` (a fixed-length vector) over the sampled interactions.
/// With engine_kind::census this runs the measurement entirely at the
/// count-vector level — same law as the agent engine, far faster.
template <typename Project>
[[nodiscard]] census_aggregator replicate_time_averaged_census(
    const sim_spec& spec, engine_kind kind, std::uint64_t burn,
    std::uint64_t samples, const batch_options& opts, Project&& project) {
  PPG_CHECK(samples > 0, "need at least one sampled interaction");
  return replicate_census(opts, [&](const replica_context&, rng& gen) {
    const auto engine = spec.make_engine(kind, gen);
    engine->run(burn);
    std::vector<double> mean;
    for (std::uint64_t i = 0; i < samples; ++i) {
      engine->step();
      const std::vector<double> value = project(engine->census());
      if (mean.empty()) mean.assign(value.size(), 0.0);
      PPG_CHECK(value.size() == mean.size(),
                "projection width must be constant across samples");
      for (std::size_t j = 0; j < value.size(); ++j) {
        mean[j] += value[j];
      }
    }
    for (auto& x : mean) {
      x /= static_cast<double>(samples);
    }
    return mean;
  });
}

}  // namespace ppg
