// One-call replicate-and-reduce entry points: the three shapes every
// Monte-Carlo driver in bench/ and examples/ needs. Each runs R replicas on
// the batch engine and folds them, in replica order, into the matching
// aggregator.
//
//   auto agg = replicate_scalar(opts, [&](const replica_context&, rng& gen) {
//     return measure_hitting_time(pop, k, gen);   // one replica
//   });
//   agg.mean(); agg.ci_half_width(); agg.quantile(0.9);
#pragma once

#include <utility>

#include "ppg/exp/aggregator.hpp"
#include "ppg/exp/batch_runner.hpp"

namespace ppg {

/// Replicates a scalar-valued experiment (body returns double).
template <typename Body>
[[nodiscard]] scalar_aggregator replicate_scalar(const batch_options& opts,
                                                 Body&& body) {
  scalar_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

/// Replicates a census-valued experiment (body returns std::vector<double>
/// of a fixed length).
template <typename Body>
[[nodiscard]] census_aggregator replicate_census(const batch_options& opts,
                                                 Body&& body) {
  census_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

/// Replicates a trajectory-valued experiment (body returns the values of one
/// replica's trace at a fixed shared time grid).
template <typename Body>
[[nodiscard]] trajectory_aggregator replicate_trajectory(
    const batch_options& opts, Body&& body) {
  trajectory_aggregator agg;
  batch_runner(opts).run_into(std::forward<Body>(body), agg);
  return agg;
}

}  // namespace ppg
