#include "ppg/exp/resume.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {
namespace {

std::size_t resolve_threads(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

resumable_sweep::resumable_sweep(sim_recipe recipe, engine_kind kind,
                                 std::uint64_t master_seed,
                                 std::size_t replicas, std::uint64_t horizon,
                                 std::size_t threads)
    : recipe_(std::move(recipe)),
      kind_(kind),
      master_seed_(master_seed),
      horizon_(horizon),
      threads_(resolve_threads(threads)) {
  PPG_CHECK(replicas >= 1, "a sweep needs at least one replica");
  engines_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    rng gen = make_stream_rng(master_seed_, i);
    engines_.push_back(recipe_.spec().make_engine(kind_, gen));
  }
}

bool resumable_sweep::advance(std::uint64_t chunk) {
  PPG_CHECK(chunk > 0, "sweep chunk must be positive");
  // Same worker-pool shape as batch_runner: an atomic index dealt to the
  // pool. Engines are independent, so completion order is irrelevant.
  thread_pool pool(std::min(threads_, engines_.size()));
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < engines_.size();
           i = next.fetch_add(1)) {
        auto& engine = *engines_[i];
        const std::uint64_t done = engine.interactions();
        if (done >= horizon_) continue;
        engine.run(std::min(chunk, horizon_ - done));
      }
    });
  }
  pool.wait_idle();
  return !finished();
}

bool resumable_sweep::finished() const {
  for (const auto& engine : engines_) {
    if (engine->interactions() < horizon_) return false;
  }
  return true;
}

const sim_engine& resumable_sweep::replica(std::size_t i) const {
  PPG_CHECK(i < engines_.size(), "replica index out of range");
  return *engines_[i];
}

json resumable_sweep::save() const {
  json doc = json::object();
  doc["schema_version"] = checkpoint_schema_version;
  doc["spec"] = recipe_.to_json();
  doc["kind"] = engine_kind_name(kind_);
  doc["master_seed"] = master_seed_;
  doc["horizon"] = horizon_;
  json snapshots = json::array();
  for (const auto& engine : engines_) {
    snapshots.push_back(engine->save_state());
  }
  doc["replicas"] = std::move(snapshots);
  return doc;
}

resumable_sweep resumable_sweep::restore(const json& doc,
                                         std::size_t threads) {
  const char* where = "sweep checkpoint";
  json_require_keys(
      doc, {"schema_version", "spec", "kind", "master_seed", "horizon",
            "replicas"},
      where);
  const std::uint64_t version =
      json_require_uint(doc, "schema_version", where);
  PPG_CHECK(version == checkpoint_schema_version,
            "sweep checkpoint: unsupported schema_version " +
                std::to_string(version));
  sim_recipe recipe = sim_recipe::from_json(json_require(doc, "spec", where));
  const engine_kind kind =
      engine_kind_from_name(json_require_string(doc, "kind", where));
  const auto& snapshots = json_require_array(doc, "replicas", where);
  PPG_CHECK(!snapshots.empty(), "sweep checkpoint: no replicas");
  resumable_sweep sweep(std::move(recipe), kind,
                        json_require_uint(doc, "master_seed", where),
                        snapshots.size(),
                        json_require_uint(doc, "horizon", where), threads);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    sweep.engines_[i]->restore_state(snapshots[i]);
  }
  return sweep;
}

}  // namespace ppg
