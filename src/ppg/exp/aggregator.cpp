#include "ppg/exp/aggregator.hpp"

#include "ppg/util/error.hpp"

namespace ppg {

void census_aggregator::add(const std::vector<double>& census) {
  PPG_CHECK(!census.empty(), "aggregating an empty census");
  if (coords_.empty()) {
    coords_.resize(census.size());
  }
  PPG_CHECK(census.size() == coords_.size(),
            "census dimension changed between replicas");
  for (std::size_t j = 0; j < coords_.size(); ++j) {
    coords_[j].add(census[j]);
  }
}

void census_aggregator::merge(const census_aggregator& other) {
  if (other.coords_.empty()) return;
  if (coords_.empty()) {
    coords_ = other.coords_;
    return;
  }
  PPG_CHECK(coords_.size() == other.coords_.size(),
            "merging census aggregators of different dimensions");
  for (std::size_t j = 0; j < coords_.size(); ++j) {
    coords_[j].merge(other.coords_[j]);
  }
}

std::size_t census_aggregator::count() const {
  return coords_.empty() ? 0 : coords_.front().count();
}

std::vector<double> census_aggregator::mean() const {
  PPG_CHECK(count() > 0, "mean of an empty census aggregate");
  std::vector<double> result(coords_.size());
  for (std::size_t j = 0; j < coords_.size(); ++j) {
    result[j] = coords_[j].mean();
  }
  return result;
}

std::vector<double> census_aggregator::ci_half_width(double z) const {
  PPG_CHECK(count() > 1, "confidence interval needs at least two replicas");
  std::vector<double> result(coords_.size());
  for (std::size_t j = 0; j < coords_.size(); ++j) {
    result[j] = coords_[j].ci_half_width(z);
  }
  return result;
}

const running_summary& census_aggregator::coordinate(std::size_t j) const {
  PPG_CHECK(j < coords_.size(), "census coordinate out of range");
  return coords_[j];
}

void scalar_aggregator::add(double value) {
  summary_.add(value);
  distribution_.add(value);
}

void scalar_aggregator::merge(const scalar_aggregator& other) {
  summary_.merge(other.summary_);
  distribution_.merge(other.distribution_);
}

void trajectory_aggregator::add(const std::vector<double>& trajectory) {
  curve_.add(trajectory);
}

void trajectory_aggregator::merge(const trajectory_aggregator& other) {
  curve_.merge(other.curve_);
}

}  // namespace ppg
