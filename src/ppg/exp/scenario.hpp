// The scenario registry: every experiment in bench/ is a named,
// parameterized function returning a structured scenario_result instead of
// a one-off main(). The single `ppg-bench` driver (exp/harness.hpp) lists,
// filters, runs, prints, and serializes scenarios uniformly, so a new
// experiment is one registered function — no CLI, timing, or output code.
//
//   ppg::scenario_result run_my_exp(const ppg::scenario_context& ctx) {
//     ppg::scenario_result result;
//     result.param("n", 400);
//     auto& table = result.table("sweep", {"k", "TV"});
//     ...
//     table.add_row({ppg::format_metric(k), ppg::format_metric(tv)});
//     result.metric("max_tv", tv, ppg::metric_goal::minimize);
//     return result;
//   }
//   const bool registered = ppg::register_scenario(
//       "my_exp", "igt,stationary", "One-line description", run_my_exp);
//
// All randomness must derive from ctx.seed (typically via ctx.batch()), so
// two runs with equal (smoke, seed, threads) produce identical metrics —
// the determinism contract CI's regression check relies on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ppg/exp/batch_runner.hpp"
#include "ppg/util/json.hpp"

namespace ppg {

/// Regression direction of a tracked metric. `none` records the value in
/// the artifact without regression checking; `minimize`/`maximize` mark it
/// for scripts/check_bench.py, which fails CI when a goal-tagged metric
/// degrades by more than the threshold against the committed baseline.
enum class metric_goal { none, minimize, maximize };

/// One formatted table of a scenario's human-readable output. Cells are
/// pre-rendered strings — numeric cells through format_metric — so the
/// printed table and the JSON artifact contain byte-identical values.
struct scenario_table {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// Appends one row; must match the header width.
  void add_row(std::vector<std::string> cells);
};

/// Everything one scenario run produced: the parameters it actually used
/// (smoke mode may shrink them), a flat ordered metrics map (the regression
/// surface), the human tables, and free-form commentary notes.
class scenario_result {
 public:
  /// Records a parameter of this run (population size, replica count, ...).
  void param(const std::string& name, json value);

  /// Records a named metric. Re-recording a name overwrites the value (and
  /// goal), so loops can keep a running extremum cheaply.
  void metric(const std::string& name, double value,
              metric_goal goal = metric_goal::none);

  /// Starts a new table and returns a reference for adding rows; stable
  /// for the life of the result (tables are stored in a deque), so a
  /// scenario may fill several tables interleaved.
  scenario_table& table(std::string title, std::vector<std::string> headers);

  /// Appends one commentary line (the "expected shape" prose of a bench).
  void note(std::string text);

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics()
      const {
    return metrics_;
  }
  [[nodiscard]] double metric_value(const std::string& name) const;
  [[nodiscard]] const std::deque<scenario_table>& tables() const {
    return tables_;
  }

  /// Renders the human view: every table via util/table, then the notes.
  void print(std::ostream& out) const;

  /// The artifact fragment: {params, metrics, metric_goals, tables, notes}.
  /// wall_s is stamped by the harness, not here.
  [[nodiscard]] json to_json() const;

 private:
  json params_ = json::object();
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<metric_goal> goals_;
  std::deque<scenario_table> tables_;
  std::vector<std::string> notes_;
};

/// Execution context handed to scenario bodies by the harness.
struct scenario_context {
  /// Reduced-cost mode: scenarios shrink sweeps, replicas, and sample
  /// counts so the whole suite finishes in CI's smoke budget.
  bool smoke = false;
  /// Master seed; all scenario randomness must derive from it.
  std::uint64_t seed = 42;
  /// Worker threads for batch replication; 0 = hardware concurrency.
  std::size_t threads = 0;

  /// Picks the full-run or smoke-run value of a tunable.
  template <typename T>
  [[nodiscard]] T pick(T full, T reduced) const {
    return smoke ? reduced : full;
  }

  /// batch_options for a replicated sub-experiment. `salt` decorrelates
  /// independent sub-experiments of one scenario (distinct salts give
  /// disjoint seed streams derived from the master seed).
  [[nodiscard]] batch_options batch(std::size_t replicas,
                                    std::uint64_t salt = 0) const {
    return {replicas, derive_stream_seed(seed, salt), threads};
  }

  /// A generator for inline (non-replicated) scenario randomness.
  [[nodiscard]] rng make_rng(std::uint64_t salt = 0) const {
    return rng(derive_stream_seed(seed, salt));
  }
};

/// A registered experiment: unique name, comma-separated tags (both are
/// matched by the driver's --filter regex), a one-line description, and the
/// body.
struct scenario_info {
  std::string name;
  std::string tags;
  std::string description;
  std::function<scenario_result(const scenario_context&)> run;
};

/// Name-keyed collection of scenarios. The global() instance is what the
/// ppg-bench driver serves; tests build their own instances.
class scenario_registry {
 public:
  /// The process-wide registry that static registration targets.
  static scenario_registry& global();

  /// Registers a scenario; throws invariant_error on a duplicate name or an
  /// empty name/body.
  void register_scenario(scenario_info info);
  void register_scenario(
      std::string name, std::string tags, std::string description,
      std::function<scenario_result(const scenario_context&)> run);

  /// Lookup by exact name; nullptr when absent.
  [[nodiscard]] const scenario_info* find(const std::string& name) const;

  /// All scenarios whose name or any comma-separated tag matches the
  /// ECMAScript regex (std::regex_search; empty filter selects all),
  /// in name order. Throws invariant_error on a malformed regex.
  [[nodiscard]] std::vector<const scenario_info*> match(
      const std::string& filter) const;

  /// All scenarios in name order.
  [[nodiscard]] std::vector<const scenario_info*> list() const;

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<scenario_info> scenarios_;
};

/// Static-initialization helper: registers into the global registry and
/// returns true, so scenario translation units can self-register with
///   const bool registered = register_scenario("name", "tags", "desc", fn);
bool register_scenario(
    std::string name, std::string tags, std::string description,
    std::function<scenario_result(const scenario_context&)> run);

}  // namespace ppg
