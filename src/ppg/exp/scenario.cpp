#include "ppg/exp/scenario.hpp"

#include <algorithm>
#include <ostream>
#include <regex>

#include "ppg/util/error.hpp"
#include "ppg/util/table.hpp"

namespace ppg {

void scenario_table::add_row(std::vector<std::string> cells) {
  PPG_CHECK(cells.size() == headers.size(),
            "row width must match the table headers");
  rows.push_back(std::move(cells));
}

void scenario_result::param(const std::string& name, json value) {
  params_[name] = std::move(value);
}

void scenario_result::metric(const std::string& name, double value,
                             metric_goal goal) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].first == name) {
      metrics_[i].second = value;
      goals_[i] = goal;
      return;
    }
  }
  metrics_.emplace_back(name, value);
  goals_.push_back(goal);
}

scenario_table& scenario_result::table(std::string title,
                                       std::vector<std::string> headers) {
  tables_.push_back(scenario_table{std::move(title), std::move(headers), {}});
  return tables_.back();
}

void scenario_result::note(std::string text) {
  notes_.push_back(std::move(text));
}

double scenario_result::metric_value(const std::string& name) const {
  for (const auto& [metric_name, value] : metrics_) {
    if (metric_name == name) return value;
  }
  PPG_CHECK(false, "unknown metric: " + name);
}

void scenario_result::print(std::ostream& out) const {
  for (const auto& table : tables_) {
    if (!table.title.empty()) {
      out << table.title << "\n";
    }
    text_table rendered(table.headers);
    for (const auto& row : table.rows) {
      rendered.add_row(row);
    }
    rendered.print(out);
    out << "\n";
  }
  if (!metrics_.empty()) {
    out << "metrics:\n";
    for (const auto& [name, value] : metrics_) {
      out << "  " << name << " = " << format_metric(value) << "\n";
    }
  }
  for (const auto& note : notes_) {
    out << note << "\n";
  }
}

json scenario_result::to_json() const {
  json out = json::object();
  out["params"] = params_;
  json metrics = json::object();
  json goals = json::object();
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    metrics[metrics_[i].first] = metrics_[i].second;
    if (goals_[i] != metric_goal::none) {
      goals[metrics_[i].first] =
          goals_[i] == metric_goal::minimize ? "min" : "max";
    }
  }
  out["metrics"] = std::move(metrics);
  out["metric_goals"] = std::move(goals);
  json tables = json::array();
  for (const auto& table : tables_) {
    json entry = json::object();
    entry["title"] = table.title;
    json headers = json::array();
    for (const auto& header : table.headers) headers.push_back(header);
    entry["headers"] = std::move(headers);
    json rows = json::array();
    for (const auto& row : table.rows) {
      json cells = json::array();
      for (const auto& cell : row) cells.push_back(cell);
      rows.push_back(std::move(cells));
    }
    entry["rows"] = std::move(rows);
    tables.push_back(std::move(entry));
  }
  out["tables"] = std::move(tables);
  json notes = json::array();
  for (const auto& note : notes_) notes.push_back(note);
  out["notes"] = std::move(notes);
  return out;
}

scenario_registry& scenario_registry::global() {
  static scenario_registry instance;
  return instance;
}

void scenario_registry::register_scenario(scenario_info info) {
  PPG_CHECK(!info.name.empty(), "scenario name must not be empty");
  PPG_CHECK(static_cast<bool>(info.run), "scenario body must not be empty");
  PPG_CHECK(find(info.name) == nullptr,
            "duplicate scenario name: " + info.name);
  scenarios_.push_back(std::move(info));
}

void scenario_registry::register_scenario(
    std::string name, std::string tags, std::string description,
    std::function<scenario_result(const scenario_context&)> run) {
  register_scenario(scenario_info{std::move(name), std::move(tags),
                                  std::move(description), std::move(run)});
}

const scenario_info* scenario_registry::find(const std::string& name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

namespace {

/// Splits a comma-separated tag list ("igt,stationary") into tags.
std::vector<std::string> split_tags(const std::string& tags) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= tags.size()) {
    const std::size_t comma = tags.find(',', start);
    const std::size_t end = comma == std::string::npos ? tags.size() : comma;
    if (end > start) out.push_back(tags.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

std::vector<const scenario_info*> scenario_registry::match(
    const std::string& filter) const {
  if (filter.empty()) return list();
  std::regex pattern;
  try {
    pattern = std::regex(filter, std::regex::ECMAScript);
  } catch (const std::regex_error& error) {
    PPG_CHECK(false, "malformed --filter regex '" + filter +
                         "': " + error.what());
  }
  std::vector<const scenario_info*> out;
  for (const auto& scenario : scenarios_) {
    bool selected = std::regex_search(scenario.name, pattern);
    if (!selected) {
      for (const auto& tag : split_tags(scenario.tags)) {
        if (std::regex_search(tag, pattern)) {
          selected = true;
          break;
        }
      }
    }
    if (selected) out.push_back(&scenario);
  }
  std::sort(out.begin(), out.end(),
            [](const scenario_info* a, const scenario_info* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<const scenario_info*> scenario_registry::list() const {
  std::vector<const scenario_info*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) {
    out.push_back(&scenario);
  }
  std::sort(out.begin(), out.end(),
            [](const scenario_info* a, const scenario_info* b) {
              return a->name < b->name;
            });
  return out;
}

bool register_scenario(
    std::string name, std::string tags, std::string description,
    std::function<scenario_result(const scenario_context&)> run) {
  scenario_registry::global().register_scenario(
      std::move(name), std::move(tags), std::move(description),
      std::move(run));
  return true;
}

}  // namespace ppg
