#include "ppg/exp/harness.hpp"

#include <cerrno>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <ostream>

#include "ppg/util/error.hpp"
#include "ppg/util/timer.hpp"

// Stamped by CMake on this translation unit; harmless defaults keep the
// file buildable standalone (tests, tooling).
#ifndef PPG_GIT_SHA
#define PPG_GIT_SHA "unknown"
#endif
#ifndef PPG_BUILD_TYPE
#define PPG_BUILD_TYPE "unknown"
#endif

namespace ppg {

namespace {

constexpr const char* usage_text =
    "ppg-bench — unified experiment driver for the ppg reproduction\n"
    "\n"
    "usage: ppg-bench [flags]\n"
    "  --list             list registered scenarios (name, tags, "
    "description)\n"
    "  --filter <regex>   run only scenarios whose name or tag matches\n"
    "  --smoke            reduced sweeps/replicas (the CI regression mode)\n"
    "  --seed <n>         master seed (default 42)\n"
    "  --threads <n>      worker threads for replication (default: "
    "hardware)\n"
    "  --json <path>      write the JSON artifact to <path>\n"
    "  --help             this text\n";

std::uint64_t parse_uint(const std::string& flag, const std::string& text) {
  PPG_CHECK(!text.empty(), flag + " needs a numeric value");
  // Digits only: strtoull would silently wrap a negative value ("-1" ->
  // 2^64 - 1) instead of rejecting it.
  for (const char c : text) {
    PPG_CHECK(c >= '0' && c <= '9',
              flag + " value is not an unsigned number: " + text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  PPG_CHECK(errno == 0 && end == text.c_str() + text.size(),
            flag + " value is out of range: " + text);
  return static_cast<std::uint64_t>(value);
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

}  // namespace

harness_options parse_harness_args(const std::vector<std::string>& args) {
  harness_options options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      PPG_CHECK(i + 1 < args.size(), arg + " needs a value");
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--filter") {
      options.filter = value();
    } else if (arg == "--seed") {
      options.seed = parse_uint(arg, value());
    } else if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(parse_uint(arg, value()));
    } else if (arg == "--json") {
      options.json_path = value();
    } else {
      PPG_CHECK(false, "unknown flag: " + arg + " (try --help)");
    }
  }
  return options;
}

json harness_artifact(const std::vector<harness_run>& runs,
                      const harness_options& options) {
  json artifact = json::object();
  artifact["schema_version"] = bench_schema_version;
  artifact["git_sha"] = PPG_GIT_SHA;
  artifact["build_type"] = PPG_BUILD_TYPE;
  artifact["timestamp"] = utc_timestamp();
  artifact["smoke"] = options.smoke;
  artifact["seed"] = options.seed;
  json scenarios = json::array();
  for (const auto& run : runs) {
    json entry = run.result.to_json();
    // Rebuild with name first and wall_s after metrics: stable key order
    // keeps artifact diffs reviewable.
    json ordered = json::object();
    ordered["name"] = run.name;
    ordered["params"] = *entry.find("params");
    ordered["metrics"] = *entry.find("metrics");
    ordered["metric_goals"] = *entry.find("metric_goals");
    ordered["wall_s"] = run.wall_s;
    ordered["tables"] = *entry.find("tables");
    ordered["notes"] = *entry.find("notes");
    scenarios.push_back(std::move(ordered));
  }
  artifact["scenarios"] = std::move(scenarios);
  return artifact;
}

int run_harness(const harness_options& options, scenario_registry& registry,
                std::ostream& out, std::ostream& err) {
  if (options.help) {
    out << usage_text;
    return 0;
  }
  std::vector<const scenario_info*> selected;
  try {
    selected = registry.match(options.filter);
  } catch (const invariant_error& error) {
    err << "ppg-bench: " << error.what() << "\n";
    return 2;
  }
  if (options.list) {
    for (const auto* scenario : selected) {
      out << scenario->name << "  [" << scenario->tags << "]\n    "
          << scenario->description << "\n";
    }
    out << selected.size() << " scenario(s)\n";
    return 0;
  }
  if (selected.empty()) {
    err << "ppg-bench: no scenario matches filter '" << options.filter
        << "'\n";
    return 2;
  }

  const scenario_context ctx{options.smoke, options.seed, options.threads};
  std::vector<harness_run> runs;
  runs.reserve(selected.size());
  bool failed = false;
  const timer total_clock;
  for (const auto* scenario : selected) {
    out << "=== " << scenario->name << ": " << scenario->description
        << " ===\n\n";
    const timer clock;
    try {
      harness_run run;
      run.name = scenario->name;
      run.result = scenario->run(ctx);
      run.wall_s = clock.seconds();
      run.result.print(out);
      out << "[" << scenario->name << " finished in "
          << format_metric(run.wall_s, 3) << "s]\n\n";
      runs.push_back(std::move(run));
    } catch (const std::exception& error) {
      failed = true;
      err << "ppg-bench: scenario " << scenario->name
          << " failed: " << error.what() << "\n";
    }
  }
  out << "ran " << runs.size() << "/" << selected.size() << " scenario(s) in "
      << format_metric(total_clock.seconds(), 3) << "s\n";

  if (!options.json_path.empty()) {
    const json artifact = harness_artifact(runs, options);
    std::ofstream file(options.json_path);
    if (!file) {
      err << "ppg-bench: cannot open " << options.json_path
          << " for writing\n";
      return 2;
    }
    artifact.dump(file);
    file << "\n";
    out << "wrote " << options.json_path << "\n";
  }
  return failed ? 1 : 0;
}

int harness_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  harness_options options;
  try {
    options = parse_harness_args(args);
  } catch (const invariant_error& error) {
    std::cerr << "ppg-bench: " << error.what() << "\n" << usage_text;
    return 2;
  }
  return run_harness(options, scenario_registry::global(), std::cout,
                     std::cerr);
}

}  // namespace ppg
