// The batch-replication engine: runs R independent replicas of a stochastic
// experiment across a worker pool and returns the per-replica results in
// replica order.
//
// Determinism contract. Replica i always draws from the generator
// make_stream_rng(master_seed, i) — a counter-based splitmix64 derivation
// that depends on nothing but (master_seed, i) — and results are stored by
// replica index, never by completion order. Aggregation therefore sees the
// identical sequence of inputs whatever the thread count: same master seed
// => bit-identical aggregates at 1 worker and at 64.
//
// Every Monte-Carlo experiment in the paper (stationary censuses, cutoff
// profiles, coupling tails, ε-Nash trajectories) is "replicate + reduce";
// this engine is the single replication loop the bench/ and examples/
// drivers share instead of hand-rolling their own. Replica bodies typically
// build a simulation engine from a shared sim_spec —
// `spec.make_engine(kind, gen)` — so the execution backend (agent, census,
// batched) is one more replicated parameter; see replicate.hpp for the
// packaged shapes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

#include "ppg/util/error.hpp"
#include "ppg/util/rng.hpp"
#include "ppg/util/thread_pool.hpp"

namespace ppg {

struct batch_options {
  /// Number of independent replicas R.
  std::size_t replicas = 1;
  /// Master seed; replica i uses derive_stream_seed(master_seed, i).
  std::uint64_t master_seed = 0;
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
};

/// Identity of one replica, handed to the experiment body.
struct replica_context {
  /// Replica index in [0, replicas).
  std::size_t index = 0;
  /// The replica's derived seed (for logging / reproduction of one replica).
  std::uint64_t seed = 0;
};

class batch_runner {
 public:
  explicit batch_runner(batch_options opts) : opts_(opts) {
    PPG_CHECK(opts_.replicas >= 1, "a batch needs at least one replica");
    if (opts_.threads == 0) {
      opts_.threads =
          std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
  }

  [[nodiscard]] const batch_options& options() const { return opts_; }

  /// Runs `body(ctx, gen)` once per replica with that replica's own
  /// generator; returns results indexed by replica. The body must not touch
  /// shared mutable state (each call owns its rng and its result slot), and
  /// its result type must be default-constructible (slots are pre-allocated
  /// and filled in completion order). If any replica throws, the first
  /// exception (in replica order) is rethrown after the batch drains.
  template <typename Body>
  auto run(Body&& body) const {
    using result_type =
        std::decay_t<decltype(body(std::declval<const replica_context&>(),
                                   std::declval<rng&>()))>;
    static_assert(!std::is_void_v<result_type>,
                  "replica bodies must return their result by value");
    static_assert(!std::is_same_v<result_type, bool>,
                  "bool results are unsafe: concurrent writes to "
                  "std::vector<bool> slots race on packed bits — return a "
                  "small struct or an int instead");
    static_assert(std::is_default_constructible_v<result_type>,
                  "replica result types must be default-constructible");
    const std::size_t r = opts_.replicas;
    std::vector<result_type> results(r);
    std::vector<std::exception_ptr> errors(r);
    {
      // One task per worker, each pulling replica indices from a shared
      // atomic counter: cheap, balanced, and index-deterministic.
      thread_pool pool(std::min(opts_.threads, r));
      std::atomic<std::size_t> next{0};
      for (std::size_t w = 0; w < pool.size(); ++w) {
        pool.submit([&] {
          for (std::size_t i = next.fetch_add(1); i < r;
               i = next.fetch_add(1)) {
            const replica_context ctx{i,
                                      derive_stream_seed(opts_.master_seed, i)};
            rng gen(ctx.seed);
            try {
              results[i] = body(ctx, gen);
            } catch (...) {
              errors[i] = std::current_exception();
            }
          }
        });
      }
      pool.wait_idle();
    }
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    return results;
  }

  /// Replicate-and-reduce: folds the per-replica results into `accumulator`
  /// in replica order via `accumulator.add(result)`. The fold runs on the
  /// calling thread, so floating-point reduction order — and therefore the
  /// aggregate — is independent of the thread count.
  template <typename Body, typename Accumulator>
  void run_into(Body&& body, Accumulator& accumulator) const {
    for (auto& result : run(body)) {
      accumulator.add(result);
    }
  }

 private:
  batch_options opts_;
};

}  // namespace ppg
