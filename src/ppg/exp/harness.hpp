// The `ppg-bench` driver logic, kept in the library so tests can exercise
// flag parsing, scenario selection, and artifact assembly without spawning
// a process. The binary in bench/ppg_bench.cpp is a thin main() over
// run_harness() on the global registry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ppg/exp/scenario.hpp"

namespace ppg {

/// Parsed ppg-bench command line.
struct harness_options {
  bool help = false;
  bool list = false;           ///< --list: print scenarios, run nothing
  bool smoke = false;          ///< --smoke: reduced n / replicas / sweeps
  std::string filter;          ///< --filter <regex> over names and tags
  std::uint64_t seed = 42;     ///< --seed <n>: master seed
  std::size_t threads = 0;     ///< --threads <n>: 0 = hardware concurrency
  std::string json_path;       ///< --json <path>: write the artifact
};

/// Parses flags (excluding argv[0]); throws invariant_error on an unknown
/// flag, a missing value, or a malformed number.
[[nodiscard]] harness_options parse_harness_args(
    const std::vector<std::string>& args);

/// One scenario's outcome inside a harness run.
struct harness_run {
  std::string name;
  scenario_result result;
  double wall_s = 0.0;
};

/// The artifact: {schema_version, git_sha, build_type, timestamp, smoke,
/// seed, scenarios: [{name, params, metrics, metric_goals, wall_s, tables,
/// notes}]}. schema_version changes only on breaking layout changes (see
/// DESIGN.md §6); additive fields keep the version.
[[nodiscard]] json harness_artifact(const std::vector<harness_run>& runs,
                                    const harness_options& options);

/// The current artifact schema version.
inline constexpr int bench_schema_version = 1;

/// Runs the selected scenarios of `registry` per `options`, printing the
/// human view to `out` and diagnostics to `err`; writes the JSON artifact
/// when requested. Returns a process exit code (0 on success, 1 on a failed
/// scenario, 2 on usage errors).
int run_harness(const harness_options& options, scenario_registry& registry,
                std::ostream& out, std::ostream& err);

/// Convenience main() body: parse args, run on the global registry.
int harness_main(int argc, char** argv);

}  // namespace ppg
