#!/usr/bin/env python3
"""Compare a ppg-bench JSON artifact against the committed baseline.

Usage: check_bench.py NEW_JSON BASELINE_JSON [--threshold 0.30] [--atol 1e-9]

Fails (exit 1) when:
  - the schema versions differ,
  - a baseline scenario is missing from the new artifact, or
  - a goal-tagged metric regresses by more than --threshold:
      goal "min": new > old * (1 + threshold)   (e.g. a TV distance grew)
      goal "max": new < old * (1 - threshold)   (e.g. an engine speedup fell)
    Values within --atol of each other (or both below it) never fail —
    machine-precision metrics (detailed-balance residuals ~1e-17) jitter in
    the last bit across compilers, which is not a regression.

Goal tags come from each scenario's "metric_goals" map in the baseline (the
contract the baseline froze); goal-tagged metrics that are new since the
baseline are reported as a reminder to regenerate it. Untagged metrics are
listed for the trajectory but never fail the check. The scenarios tag only
machine-robust quantities (accuracy of seeded deterministic runs, in-process
speedup ratios) — raw wall-clock rates stay untagged because CI hardware
varies run to run.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot load {path}: {error}")


def scenario_map(artifact):
    return {s["name"]: s for s in artifact.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(
        description="ppg-bench regression check against a baseline artifact")
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional regression allowed (default 0.30)")
    parser.add_argument("--atol", type=float, default=1e-9,
                        help="absolute noise floor (default 1e-9)")
    args = parser.parse_args()

    new = load(args.new_json)
    baseline = load(args.baseline_json)

    failures = []
    warnings = []

    if new.get("schema_version") != baseline.get("schema_version"):
        failures.append(
            f"schema_version mismatch: new={new.get('schema_version')} "
            f"baseline={baseline.get('schema_version')}")

    new_scenarios = scenario_map(new)
    base_scenarios = scenario_map(baseline)

    for name in sorted(base_scenarios):
        if name not in new_scenarios:
            failures.append(f"scenario '{name}' missing from new artifact")
    for name in sorted(new_scenarios):
        if name not in base_scenarios:
            warnings.append(f"scenario '{name}' not in baseline — "
                            "regenerate BENCH_baseline.json to track it")

    rows = []
    for name in sorted(set(base_scenarios) & set(new_scenarios)):
        base_metrics = base_scenarios[name].get("metrics", {})
        base_goals = base_scenarios[name].get("metric_goals", {})
        new_metrics = new_scenarios[name].get("metrics", {})
        new_goals = new_scenarios[name].get("metric_goals", {})

        for metric in sorted(new_goals):
            if metric not in base_goals:
                warnings.append(
                    f"{name}.{metric} is goal-tagged but absent from the "
                    "baseline — regenerate BENCH_baseline.json to track it")

        for metric in sorted(base_goals):
            goal = base_goals[metric]
            if metric not in new_metrics:
                failures.append(f"{name}.{metric} missing from new artifact")
                continue
            old_value = base_metrics[metric]
            new_value = new_metrics[metric]
            verdict = "ok"
            if abs(new_value - old_value) > args.atol:
                if goal == "min" and new_value > old_value * (
                        1 + args.threshold) and new_value > args.atol:
                    verdict = "REGRESSED"
                elif goal == "max" and new_value < old_value * (
                        1 - args.threshold):
                    verdict = "REGRESSED"
            change = ("n/a" if abs(old_value) <= args.atol else
                      f"{(new_value - old_value) / abs(old_value):+.1%}")
            rows.append((name, metric, goal, old_value, new_value, change,
                         verdict))
            if verdict == "REGRESSED":
                failures.append(
                    f"{name}.{metric} ({goal}): baseline {old_value:.6g} -> "
                    f"{new_value:.6g} ({change})")

    if rows:
        name_w = max(len(r[0]) for r in rows)
        metric_w = max(len(r[1]) for r in rows)
        print(f"{'scenario':<{name_w}}  {'metric':<{metric_w}}  goal  "
              f"{'baseline':>12}  {'new':>12}  {'change':>8}  verdict")
        for name, metric, goal, old, cur, change, verdict in rows:
            print(f"{name:<{name_w}}  {metric:<{metric_w}}  {goal:<4}  "
                  f"{old:>12.6g}  {cur:>12.6g}  {change:>8}  {verdict}")

    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\ncheck_bench: OK — {len(rows)} goal-tagged metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
