#!/usr/bin/env python3
"""Compare a ppg-bench JSON artifact against the committed baseline, or
regenerate the baseline from a fresh full run.

Compare (the CI gate):
    check_bench.py NEW_JSON BASELINE_JSON [--threshold 0.30] [--atol 1e-9]

Fails (exit 1) when:
  - the schema versions differ,
  - a baseline scenario is missing from the new artifact, or
  - a goal-tagged metric regresses by more than --threshold:
      goal "min": new > old * (1 + threshold)   (e.g. a TV distance grew)
      goal "max": new < old * (1 - threshold)   (e.g. an engine speedup fell)
    Values within --atol of each other (or both below it) never fail —
    machine-precision metrics (detailed-balance residuals ~1e-17) jitter in
    the last bit across compilers, which is not a regression.

Compare two runs (the thread-determinism gate):
    check_bench.py --compare-runs A_JSON B_JSON [--atol 0]

Fails (exit 1) when any goal-tagged metric differs between the two
artifacts by more than --atol (default 0: goal-tagged metrics are
seed-deterministic by repo convention, so two runs of the same suite at
the same seed — e.g. --threads 1 vs --threads $(nproc) — must agree
bitwise), or when a scenario or gated metric is present in one artifact
but not the other. Untagged metrics (wall-clock rates) are ignored.

Refresh (after an intentional metric change or a new scenario):
    check_bench.py --refresh [--bench build/bench/ppg-bench]
                             [--baseline BENCH_baseline.json]

Runs the bench binary in full (non-smoke) mode, prints the diff of gated
metrics against the current baseline — regressions are reported but do not
fail, since a refresh is by definition intentional — and rewrites the
baseline file. Baseline scenarios or gated metrics absent from the fresh
run are reported loudly (they are about to be dropped from the gate), so a
renamed or deleted metric never disappears silently. Commit the diff it
prints.

Goal tags come from each scenario's "metric_goals" map in the baseline (the
contract the baseline froze); goal-tagged metrics that are new since the
baseline are reported as a reminder to regenerate it. Untagged metrics are
listed for the trajectory but never fail the check. The scenarios tag only
machine-robust quantities (accuracy of seeded deterministic runs, in-process
speedup ratios) — raw wall-clock rates stay untagged because CI hardware
varies run to run.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"check_bench: cannot load {path}: {error}")


def scenario_map(artifact):
    return {s["name"]: s for s in artifact.get("scenarios", [])}


def compare(new, baseline, threshold, atol):
    """Returns (rows, failures, warnings) for the gated-metric diff.

    Each failure is a (kind, message) pair, kind in {"schema", "missing",
    "regression"}, so callers can filter structurally (--refresh keeps only
    regressions) instead of by message substring."""
    failures = []
    warnings = []

    if new.get("schema_version") != baseline.get("schema_version"):
        failures.append(
            ("schema",
             f"schema_version mismatch: new={new.get('schema_version')} "
             f"baseline={baseline.get('schema_version')}"))

    new_scenarios = scenario_map(new)
    base_scenarios = scenario_map(baseline)

    for name in sorted(base_scenarios):
        if name not in new_scenarios:
            failures.append(
                ("missing", f"scenario '{name}' missing from new artifact"))
            # Enumerate the gated metrics the missing scenario takes with
            # it, so the failure names every metric leaving the gate.
            goals = base_scenarios[name].get("metric_goals", {})
            for metric in sorted(goals):
                failures.append(
                    ("missing",
                     f"{name}.{metric} ({goals[metric]}) gated in the "
                     "baseline but its scenario is missing"))
    for name in sorted(new_scenarios):
        if name not in base_scenarios:
            warnings.append(f"scenario '{name}' not in baseline — "
                            "regenerate BENCH_baseline.json to track it")

    rows = []
    for name in sorted(set(base_scenarios) & set(new_scenarios)):
        base_metrics = base_scenarios[name].get("metrics", {})
        base_goals = base_scenarios[name].get("metric_goals", {})
        new_metrics = new_scenarios[name].get("metrics", {})
        new_goals = new_scenarios[name].get("metric_goals", {})

        for metric in sorted(new_goals):
            if metric not in base_goals:
                warnings.append(
                    f"{name}.{metric} is goal-tagged but absent from the "
                    "baseline — regenerate BENCH_baseline.json to track it")

        for metric in sorted(base_goals):
            goal = base_goals[metric]
            if metric not in new_metrics:
                failures.append(
                    ("missing",
                     f"{name}.{metric} missing from new artifact"))
                continue
            old_value = base_metrics[metric]
            new_value = new_metrics[metric]
            verdict = "ok"
            if abs(new_value - old_value) > atol:
                if goal == "min" and new_value > old_value * (
                        1 + threshold) and new_value > atol:
                    verdict = "REGRESSED"
                elif goal == "max" and new_value < old_value * (
                        1 - threshold):
                    verdict = "REGRESSED"
            change = ("n/a" if abs(old_value) <= atol else
                      f"{(new_value - old_value) / abs(old_value):+.1%}")
            rows.append((name, metric, goal, old_value, new_value, change,
                         verdict))
            if verdict == "REGRESSED":
                failures.append(
                    ("regression",
                     f"{name}.{metric} ({goal}): baseline {old_value:.6g} "
                     f"-> {new_value:.6g} ({change})"))
    return rows, failures, warnings


def compare_runs(path_a, path_b, atol):
    """Zero-tolerance agreement check between two runs of the same suite.

    Goal-tagged metrics are seed-deterministic by repo convention, so two
    artifacts produced at the same (smoke, seed) — at any thread counts —
    must agree on every one of them. Returns a list of failure messages."""
    run_a = load(path_a)
    run_b = load(path_b)
    failures = []
    if run_a.get("schema_version") != run_b.get("schema_version"):
        failures.append(
            f"schema_version mismatch: {path_a}={run_a.get('schema_version')} "
            f"{path_b}={run_b.get('schema_version')}")
    scenarios_a = scenario_map(run_a)
    scenarios_b = scenario_map(run_b)
    for name in sorted(set(scenarios_a) ^ set(scenarios_b)):
        where = path_b if name in scenarios_a else path_a
        failures.append(f"scenario '{name}' missing from {where}")
    checked = 0
    for name in sorted(set(scenarios_a) & set(scenarios_b)):
        a = scenarios_a[name]
        b = scenarios_b[name]
        gated = sorted(set(a.get("metric_goals", {}))
                       | set(b.get("metric_goals", {})))
        for metric in gated:
            missing = [path for path, s in ((path_a, a), (path_b, b))
                       if metric not in s.get("metrics", {})]
            if missing:
                failures.append(f"{name}.{metric} missing from "
                                f"{' and '.join(missing)}")
                continue
            value_a = a["metrics"][metric]
            value_b = b["metrics"][metric]
            checked += 1
            if abs(value_a - value_b) > atol:
                failures.append(
                    f"{name}.{metric} differs: {value_a!r} vs {value_b!r} "
                    f"(|diff| = {abs(value_a - value_b):.6g} > atol {atol:g})")
    if failures:
        print(f"check_bench: --compare-runs: {len(failures)} mismatch(es) "
              f"between {path_a} and {path_b}:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print(f"check_bench: --compare-runs OK — {checked} goal-tagged "
          f"metric(s) agree within atol {atol:g}")
    return 0


def print_rows(rows):
    if not rows:
        return
    name_w = max(len(r[0]) for r in rows)
    metric_w = max(len(r[1]) for r in rows)
    print(f"{'scenario':<{name_w}}  {'metric':<{metric_w}}  goal  "
          f"{'baseline':>12}  {'new':>12}  {'change':>8}  verdict")
    for name, metric, goal, old, cur, change, verdict in rows:
        print(f"{name:<{name_w}}  {metric:<{metric_w}}  {goal:<4}  "
              f"{old:>12.6g}  {cur:>12.6g}  {change:>8}  {verdict}")


def refresh(args):
    """Regenerates the baseline from a full (non-smoke) run and prints the
    diff of gated metrics against the previous baseline."""
    if not os.path.exists(args.bench):
        sys.exit(f"check_bench: bench binary not found at {args.bench} "
                 "(build it, or pass --bench)")
    with tempfile.NamedTemporaryFile(
            suffix=".json", prefix="bench-refresh-",
            dir=os.path.dirname(os.path.abspath(args.baseline)),
            delete=False) as handle:
        fresh_path = handle.name
    print(f"check_bench: running full suite: {args.bench} "
          f"--json {fresh_path}")
    run = subprocess.run(
        [args.bench, "--json", fresh_path],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    if run.returncode != 0:
        os.unlink(fresh_path)
        sys.stderr.write(run.stderr)
        sys.exit(f"check_bench: bench run failed (exit {run.returncode})")
    fresh = load(fresh_path)

    if os.path.exists(args.baseline):
        baseline = load(args.baseline)
        rows, failures, warnings = compare(fresh, baseline, args.threshold,
                                           args.atol)
        print_rows(rows)
        for warning in warnings:
            print(f"warning: {warning}")
        dropped = [msg for kind, msg in failures if kind == "missing"]
        if dropped:
            print(f"\ncheck_bench: WARNING — {len(dropped)} baseline "
                  "scenario(s)/gated metric(s) absent from the fresh run "
                  "and about to be DROPPED from the gate:")
            for message in dropped:
                print(f"  - {message}")
        moved = [msg for kind, msg in failures if kind == "regression"]
        if moved:
            print(f"\ncheck_bench: {len(moved)} gated metric(s) moved past "
                  "the threshold (intentional for a refresh):")
            for message in moved:
                print(f"  - {message}")
    else:
        print(f"check_bench: no previous baseline at {args.baseline}; "
              "writing a fresh one")

    # Keep the harness's own serialization so baseline diffs stay clean.
    os.replace(fresh_path, args.baseline)
    gated = sum(len(s.get("metric_goals", {}))
                for s in fresh.get("scenarios", []))
    print(f"\ncheck_bench: wrote {args.baseline} "
          f"({len(fresh.get('scenarios', []))} scenario(s), "
          f"{gated} gated metric(s)); review and commit the diff")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="ppg-bench regression check against a baseline artifact")
    parser.add_argument("new_json", nargs="?",
                        help="artifact to check (compare mode)")
    parser.add_argument("baseline_json", nargs="?",
                        help="baseline to check against (compare mode)")
    parser.add_argument("--refresh", action="store_true",
                        help="regenerate the baseline from a full "
                             "(non-smoke) run and print the gated diff")
    parser.add_argument("--compare-runs", nargs=2,
                        metavar=("A_JSON", "B_JSON"),
                        help="require every goal-tagged metric to agree "
                             "between two runs of the same suite "
                             "(zero tolerance unless --atol is raised)")
    parser.add_argument("--bench", default="build/bench/ppg-bench",
                        help="bench binary for --refresh "
                             "(default build/bench/ppg-bench)")
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="baseline path for --refresh "
                             "(default BENCH_baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional regression allowed (default 0.30)")
    parser.add_argument("--atol", type=float, default=None,
                        help="absolute noise floor (default 1e-9; "
                             "0 in --compare-runs mode)")
    args = parser.parse_args()

    if args.compare_runs:
        if args.refresh or args.new_json or args.baseline_json:
            parser.error("--compare-runs takes exactly its two artifacts")
        atol = args.atol if args.atol is not None else 0.0
        return compare_runs(args.compare_runs[0], args.compare_runs[1], atol)
    if args.atol is None:
        args.atol = 1e-9

    if args.refresh:
        if args.new_json or args.baseline_json:
            parser.error("--refresh takes no positional artifacts")
        return refresh(args)
    if not args.new_json or not args.baseline_json:
        parser.error("compare mode needs NEW_JSON and BASELINE_JSON "
                     "(or pass --refresh)")

    new = load(args.new_json)
    baseline = load(args.baseline_json)
    rows, failures, warnings = compare(new, baseline, args.threshold,
                                       args.atol)
    print_rows(rows)
    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s):")
        for _, message in failures:
            print(f"  - {message}")
        return 1
    print(f"\ncheck_bench: OK — {len(rows)} goal-tagged metric(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
