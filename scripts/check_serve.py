#!/usr/bin/env python3
"""End-to-end smoke test of the ppg-serve daemon over real HTTP.

    check_serve.py PATH_TO_PPG_SERVE

Starts the daemon on an ephemeral port (parsing the "listening on" line it
prints), then drives one full session lifecycle through the wire protocol:

  - GET  /healthz                 -> 200, status ok
  - POST /sessions                -> 201, a census session with a fixed seed
  - POST /sessions (same proto)   -> 201 with kernel_cache_hit true
  - POST /sessions/{id}/advance   -> 200, interactions advance exactly
  - GET  /sessions/{id}/census    -> 200, counts sum to the population
  - GET  /sessions/{id}/checkpoint-> 200, body passes check_checkpoint.py's
                                     v1 schema rules (imported directly)
  - POST /sessions/restore        -> 201, clone continues; advancing both
                                     identically keeps checkpoints
                                     byte-identical
  - DELETE /sessions/{id}         -> 200 once, then 404
  - error paths: unknown id 404, malformed recipe 400, wrong method 405
  - GET /stats                    -> 200, per-session interactions and
                                     kernel-cache hit counters add up

Exits nonzero with a pointed message on the first violation, and always
tears the daemon down. This is the CI complement to tests/test_serve.cpp:
the C++ suite drives serve_app in-process; this script proves the shipped
binary speaks the protocol over an actual socket.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_checkpoint import Violation, check_spec, check_engine  # noqa: E402

RECIPE = {
    "protocol": {"name": "approximate-majority", "params": {}},
    "initial_counts": [600, 400, 0],
    "sampling": "distinct",
}


class Failure(Exception):
    pass


def fail(msg):
    raise Failure(msg)


def request(port, method, target, body=None, expect=200):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, target, body=payload)
        response = conn.getresponse()
        text = response.read().decode()
        if response.status != expect:
            fail(
                f"{method} {target}: expected {expect}, "
                f"got {response.status}: {text[:200]}"
            )
        return json.loads(text) if text else None
    finally:
        conn.close()


def start_daemon(binary):
    daemon = subprocess.Popen(
        [binary, "--port", "0", "--chunk", "4096"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = daemon.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    if not match:
        daemon.kill()
        fail(f"daemon did not announce a port (got {line!r})")
    return daemon, int(match.group(1))


def run_smoke(port):
    health = request(port, "GET", "/healthz")
    if health.get("status") != "ok":
        fail(f"/healthz: {health}")

    created = request(
        port,
        "POST",
        "/sessions",
        {"recipe": RECIPE, "engine": "census", "seed": 2024},
        expect=201,
    )
    sid = created["id"]
    if created["kernel_cache_hit"]:
        fail("first session reported a warm kernel cache")

    twin = request(
        port,
        "POST",
        "/sessions",
        {"recipe": RECIPE, "engine": "census", "seed": 2024},
        expect=201,
    )
    if not twin["kernel_cache_hit"]:
        fail("second session on the same protocol missed the kernel cache")

    advanced = request(
        port, "POST", f"/sessions/{sid}/advance", {"interactions": 50000}
    )
    if advanced["interactions"] != 50000:
        fail(f"advance: expected 50000 interactions, got {advanced}")

    census = request(port, "GET", f"/sessions/{sid}/census")
    population = sum(RECIPE["initial_counts"])
    if sum(census["counts"]) != population:
        fail(f"census does not sum to n={population}: {census}")

    checkpoint = request(port, "GET", f"/sessions/{sid}/checkpoint")
    try:
        n, width = check_spec(checkpoint["spec"])
        check_engine(checkpoint["engine"], n, width)
    except Violation as violation:
        fail(f"checkpoint failed v1 schema validation: {violation}")
    if checkpoint["engine"]["interactions"] != 50000:
        fail("checkpoint interaction counter disagrees with the advance")

    clone = request(port, "POST", "/sessions/restore", checkpoint, expect=201)
    if not clone["restored"] or clone["interactions"] != 50000:
        fail(f"restore: {clone}")
    for session in (sid, clone["id"]):
        request(
            port, "POST", f"/sessions/{session}/advance",
            {"interactions": 30000},
        )
    original = request(port, "GET", f"/sessions/{sid}/checkpoint")
    resumed = request(port, "GET", f"/sessions/{clone['id']}/checkpoint")
    if original != resumed:
        fail("restored session diverged from the original after advancing")

    # Error paths speak proper statuses.
    request(port, "GET", "/sessions/s999/census", expect=404)
    request(port, "PUT", "/sessions", expect=405)
    request(
        port, "POST", "/sessions",
        {"recipe": {"bogus": True}, "engine": "census"}, expect=400,
    )
    request(port, "DELETE", f"/sessions/{clone['id']}", expect=200)
    request(port, "DELETE", f"/sessions/{clone['id']}", expect=404)

    stats = request(port, "GET", "/stats")
    by_id = {s["id"]: s for s in stats["sessions"]}
    if sid not in by_id or by_id[sid]["interactions"] != 80000:
        fail(f"stats does not report the session's interactions: {stats}")
    if stats["kernel_cache"]["hits"] < 2:  # twin + restore both warm
        fail(f"kernel cache hits not counted: {stats['kernel_cache']}")
    return stats


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip())
        return 2
    daemon, port = start_daemon(argv[1])
    try:
        stats = run_smoke(port)
    except Failure as failure:
        print(f"FAIL: {failure}")
        return 1
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()
            print("FAIL: daemon did not exit on SIGTERM")
            return 1
    print(
        f"OK   ppg-serve on 127.0.0.1:{port}: full session lifecycle, "
        f"{stats['requests']} requests, "
        f"{stats['kernel_cache']['hits']} warm kernel hits"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
