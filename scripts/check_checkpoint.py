#!/usr/bin/env python3
"""Validate a ppg checkpoint file against the v1 schema (DESIGN.md §9).

    check_checkpoint.py CHECKPOINT_JSON [...]

Checks, per file:
  - the outer envelope: schema_version == 1, keys exactly
    {schema_version, spec, engine};
  - the spec header: protocol {name, params}, a nonempty initial census of
    nonnegative integers, a known sampling discipline;
  - the engine snapshot: state_version == 1, a known engine kind, the
    shared fields (interactions, the 4-word xoshiro256 state, not all
    zero), and the kind-specific payload — including census consistency
    (counts sum to the spec's population size) and the multibatch round
    invariants (pools partition the census, the residual carry only
    mid-round).

Also accepts a resumable-sweep checkpoint ({schema_version, spec, kind,
master_seed, horizon, replicas}) and validates every replica snapshot.

Exits 1 with a pointed message on the first violation per file. This is the
CI complement to the C++ strict parser: it proves the on-disk format is
what DESIGN.md promises, independent of the code that wrote it.
"""

import json
import sys

SCHEMA_VERSION = 1
STATE_VERSION = 1
SAMPLINGS = {"distinct", "with_replacement"}
ENGINE_COMMON = {"state_version", "engine", "interactions", "rng"}
ENGINE_KEYS = {
    "agent": ENGINE_COMMON | {"states"},
    "census": ENGINE_COMMON | {"counts"},
    "batched": ENGINE_COMMON | {"counts", "batches", "active_weight"},
    "multibatch": ENGINE_COMMON
    | {
        "counts",
        "untouched",
        "touched",
        "untouched_total",
        "rounds",
        "collisions",
        "pending_free",
        "collision_pending",
    },
}


class Violation(Exception):
    pass


def fail(msg):
    raise Violation(msg)


def require_keys(doc, keys, where):
    if not isinstance(doc, dict):
        fail(f"{where}: expected an object")
    missing = set(keys) - doc.keys()
    extra = doc.keys() - set(keys)
    if missing:
        fail(f"{where}: missing key(s) {sorted(missing)}")
    if extra:
        fail(f"{where}: unknown key(s) {sorted(extra)}")


def require_uint(doc, key, where):
    value = doc.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        fail(f"{where}: '{key}' must be a nonnegative integer")
    return value


def require_uint_array(doc, key, where, length=None):
    value = doc.get(key)
    if not isinstance(value, list) or any(
        not isinstance(x, int) or isinstance(x, bool) or x < 0 for x in value
    ):
        fail(f"{where}: '{key}' must be an array of nonnegative integers")
    if length is not None and len(value) != length:
        fail(f"{where}: '{key}' must have {length} entries, has {len(value)}")
    return value


def check_spec(spec):
    where = "spec"
    require_keys(spec, {"protocol", "initial_counts", "sampling"}, where)
    require_keys(spec["protocol"], {"name", "params"}, "spec.protocol")
    if not isinstance(spec["protocol"]["name"], str):
        fail("spec.protocol: 'name' must be a string")
    if not isinstance(spec["protocol"]["params"], dict):
        fail("spec.protocol: 'params' must be an object")
    counts = require_uint_array(spec, "initial_counts", where)
    if not counts or sum(counts) < 2:
        fail("spec: initial_counts must describe at least 2 agents")
    if spec["sampling"] not in SAMPLINGS:
        fail(f"spec: unknown sampling '{spec['sampling']}'")
    return sum(counts), len(counts)


def check_engine(snapshot, population, width):
    kind = snapshot.get("engine") if isinstance(snapshot, dict) else None
    if kind not in ENGINE_KEYS:
        fail(f"engine: unknown engine kind {kind!r}")
    where = f"engine[{kind}]"
    require_keys(snapshot, ENGINE_KEYS[kind], where)
    if require_uint(snapshot, "state_version", where) != STATE_VERSION:
        fail(f"{where}: unsupported state_version")
    require_uint(snapshot, "interactions", where)
    rng = require_uint_array(snapshot, "rng", where, length=4)
    if all(w == 0 for w in rng):
        fail(f"{where}: all-zero rng state (xoshiro fixed point; corrupt)")
    if any(w >= 1 << 64 for w in rng):
        fail(f"{where}: rng word out of 64-bit range")

    if kind == "agent":
        states = require_uint_array(snapshot, "states", where)
        if len(states) != population:
            fail(f"{where}: {len(states)} agent states for n={population}")
        if any(s >= width for s in states):
            fail(f"{where}: agent state out of range (width {width})")
        return

    counts = require_uint_array(snapshot, "counts", where, length=width)
    if sum(counts) != population:
        fail(f"{where}: counts sum to {sum(counts)}, spec has n={population}")
    if kind == "batched":
        require_uint(snapshot, "batches", where)
        active = require_uint(snapshot, "active_weight", where)
        if active > population * population:
            fail(f"{where}: active_weight exceeds n^2")
    elif kind == "multibatch":
        untouched = require_uint_array(snapshot, "untouched", where, width)
        touched = require_uint_array(snapshot, "touched", where, width)
        for s in range(width):
            if untouched[s] + touched[s] != counts[s]:
                fail(f"{where}: pools do not partition census at state {s}")
        total = require_uint(snapshot, "untouched_total", where)
        if total != sum(untouched):
            fail(f"{where}: untouched_total != sum(untouched)")
        require_uint(snapshot, "rounds", where)
        require_uint(snapshot, "collisions", where)
        pending = require_uint(snapshot, "pending_free", where)
        if not isinstance(snapshot.get("collision_pending"), bool):
            fail(f"{where}: 'collision_pending' must be a bool")
        if pending and not snapshot["collision_pending"]:
            fail(f"{where}: pending_free > 0 outside a round")
        if not snapshot["collision_pending"] and total != population:
            fail(f"{where}: pools not fully untouched between rounds")
        if 2 * pending > total:
            fail(f"{where}: pending pairs exceed the untouched pool")


def check_file(path):
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        fail("checkpoint: expected a JSON object")
    if require_uint(doc, "schema_version", "checkpoint") != SCHEMA_VERSION:
        fail("checkpoint: unsupported schema_version")
    if "replicas" in doc:  # resumable-sweep checkpoint
        require_keys(
            doc,
            {"schema_version", "spec", "kind", "master_seed", "horizon",
             "replicas"},
            "sweep checkpoint",
        )
        population, width = check_spec(doc["spec"])
        if doc["kind"] not in ENGINE_KEYS:
            fail(f"sweep checkpoint: unknown engine kind {doc['kind']!r}")
        require_uint(doc, "master_seed", "sweep checkpoint")
        horizon = require_uint(doc, "horizon", "sweep checkpoint")
        if not isinstance(doc["replicas"], list) or not doc["replicas"]:
            fail("sweep checkpoint: 'replicas' must be a nonempty array")
        for i, snapshot in enumerate(doc["replicas"]):
            check_engine(snapshot, population, width)
            if snapshot["engine"] != doc["kind"]:
                fail(f"replica {i}: engine kind differs from the sweep's")
            if snapshot["interactions"] > horizon:
                fail(f"replica {i}: past the sweep horizon")
        return f"sweep of {len(doc['replicas'])} x {doc['kind']}"
    require_keys(doc, {"schema_version", "spec", "engine"}, "checkpoint")
    population, width = check_spec(doc["spec"])
    check_engine(doc["engine"], population, width)
    return (
        f"{doc['engine']['engine']} engine at "
        f"{doc['engine']['interactions']} interactions"
    )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    status = 0
    for path in argv[1:]:
        try:
            summary = check_file(path)
        except Violation as violation:
            print(f"FAIL {path}: {violation}")
            status = 1
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path}: {error}")
            status = 1
        else:
            print(f"OK   {path}: valid v{SCHEMA_VERSION} checkpoint "
                  f"({summary})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
