#!/usr/bin/env python3
"""Crash-recovery gate for the ppg-serve durable session store.

    check_crash_recovery.py PATH_TO_PPG_SERVE [STORE_DIR]

Drives the shipped binary through the full DESIGN.md §13 story over real
sockets and real SIGKILL:

  1. Boot with --store, create a census and a multibatch session, advance
     both (periodic spills land every --spill-every chunks).
  2. Fire a long advance and SIGKILL the daemon mid-flight — no drain, no
     goodbye. Parse the spill envelopes straight off the disk.
  3. Reboot on the same store directory. Both sessions must come back
     under their original ids, marked recovered, and the recovered state
     must equal the last spilled generation exactly.
  4. Bit-exactness: restore a twin from the spilled checkpoint document
     over the wire, advance twin and recovered session identically, and
     require byte-identical served checkpoints.
  5. Graceful drain: SIGTERM must exit 0 and leave the final state on disk.
  6. Corruption: truncate one spill, reboot — the daemon must boot anyway,
     quarantine the file, report it in /stats, and still recover the
     healthy session.

On success the store directory is removed; on failure it is left in place
(CI uploads it as a diagnostic artifact). Exits nonzero on any violation.
"""

import http.client
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import threading
import time

SPILL_EVERY = 4
CHUNK = 2048


class Failure(Exception):
    pass


def fail(msg):
    raise Failure(msg)


def request(port, method, target, body=None, expect=200, raw=False):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, target, body=payload)
        response = conn.getresponse()
        text = response.read().decode()
        if response.status != expect:
            fail(
                f"{method} {target}: expected {expect}, "
                f"got {response.status}: {text[:200]}"
            )
        if raw:
            return text
        return json.loads(text) if text else None
    finally:
        conn.close()


def start_daemon(binary, store_dir):
    daemon = subprocess.Popen(
        [
            binary,
            "--port", "0",
            "--chunk", str(CHUNK),
            "--store", store_dir,
            "--spill-every", str(SPILL_EVERY),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port = None
    for _ in range(10):
        line = daemon.stdout.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        daemon.kill()
        fail("daemon did not announce a port")
    return daemon, port


def sigterm_and_expect_clean_exit(daemon, what):
    daemon.send_signal(signal.SIGTERM)
    try:
        code = daemon.wait(timeout=10)
    except subprocess.TimeoutExpired:
        daemon.kill()
        fail(f"{what}: daemon did not exit on SIGTERM")
    if code != 0:
        fail(f"{what}: SIGTERM exit code {code}, expected 0 (drained)")


def read_envelope(store_dir, sid):
    path = os.path.join(store_dir, f"{sid}.session.json")
    with open(path, "r", encoding="utf-8") as spill:
        doc = json.load(spill)
    for key in ("store_version", "id", "generation", "seed", "checkpoint"):
        if key not in doc:
            fail(f"spill envelope {path} is missing '{key}'")
    if doc["id"] != sid:
        fail(f"spill envelope {path} carries id {doc['id']!r}")
    return doc


def run_gate(binary, store_dir):
    recipe_census = {
        "protocol": {"name": "rumor", "params": {}},
        "initial_counts": [2800, 200],
        "sampling": "distinct",
    }
    recipe_multibatch = {
        "protocol": {"name": "approximate-majority", "params": {}},
        "initial_counts": [6000, 4000, 0],
        "sampling": "distinct",
    }

    # --- 1. boot, create, advance: spills land as we go.
    daemon, port = start_daemon(binary, store_dir)
    try:
        for body in (
            {"recipe": recipe_census, "engine": "census", "seed": 11},
            {"recipe": recipe_multibatch, "engine": "multibatch", "seed": 22},
        ):
            request(port, "POST", "/sessions", body, expect=201)
        for sid in ("s1", "s2"):
            request(
                port, "POST", f"/sessions/{sid}/advance",
                {"interactions": 40000},
            )

        # --- 2. SIGKILL mid-advance: the periodic spill is all that survives.
        def doomed_advance():
            try:
                request(
                    port, "POST", "/sessions/s2/advance",
                    {"interactions": 50_000_000},
                )
            except Exception:
                pass  # the daemon dies under this request by design

        background = threading.Thread(target=doomed_advance, daemon=True)
        background.start()
        time.sleep(0.3)  # let the advance cross a few spill strides
    finally:
        daemon.kill()
        daemon.wait(timeout=10)
    background.join(timeout=10)

    spilled = {sid: read_envelope(store_dir, sid) for sid in ("s1", "s2")}
    if spilled["s2"]["generation"] < 1:
        fail("s2 was never spilled before the kill")

    # --- 3. reboot on the same store: original ids, recovered flags, and
    # state equal to the last spilled generation.
    daemon, port = start_daemon(binary, store_dir)
    try:
        for sid in ("s1", "s2"):
            info = request(port, "GET", f"/sessions/{sid}")
            if not info.get("recovered"):
                fail(f"{sid} did not report recovered=true: {info}")
            if not info.get("durable"):
                fail(f"{sid} recovered without durability: {info}")
            if info["generation"] != spilled[sid]["generation"]:
                fail(
                    f"{sid}: recovered generation {info['generation']} != "
                    f"spilled {spilled[sid]['generation']}"
                )
            served = json.loads(
                request(port, "GET", f"/sessions/{sid}/checkpoint", raw=True)
            )
            if served != spilled[sid]["checkpoint"]:
                fail(f"{sid}: recovered state is not the spilled generation")
        stats = request(port, "GET", "/stats")
        if stats["durability"]["recovered_sessions"] != 2:
            fail(f"expected 2 recovered sessions: {stats['durability']}")

        # --- 4. bit-exact continuation: the recovered session and a twin
        # restored from the spilled checkpoint advance in lockstep.
        twin = request(
            port, "POST", "/sessions/restore",
            spilled["s2"]["checkpoint"], expect=201,
        )
        if twin["id"] in ("s1", "s2"):
            fail(f"restore reused a recovered id: {twin['id']}")
        for sid in ("s2", twin["id"]):
            request(
                port, "POST", f"/sessions/{sid}/advance",
                {"interactions": 30000},
            )
        recovered_ckpt = request(
            port, "GET", "/sessions/s2/checkpoint", raw=True
        )
        twin_ckpt = request(
            port, "GET", f"/sessions/{twin['id']}/checkpoint", raw=True
        )
        if recovered_ckpt != twin_ckpt:
            fail("recovered session diverged from its solo twin")
    except Failure:
        daemon.kill()
        daemon.wait(timeout=10)
        raise
    else:
        # --- 5. graceful drain spills the final state and exits 0.
        sigterm_and_expect_clean_exit(daemon, "drain")
    final = read_envelope(store_dir, "s2")
    served = json.loads(recovered_ckpt)
    if final["checkpoint"] != served:
        fail("drain did not spill s2's final state")

    # --- 6. a corrupted spill is quarantined, never fatal.
    s1_path = os.path.join(store_dir, "s1.session.json")
    with open(s1_path, "r+", encoding="utf-8") as spill:
        spill.truncate(40)
    daemon, port = start_daemon(binary, store_dir)
    try:
        request(port, "GET", "/sessions/s1", expect=404)  # quarantined
        request(port, "GET", "/sessions/s2")  # healthy one recovered
        stats = request(port, "GET", "/stats")
        quarantined = stats["durability"]["quarantined"]
        if len(quarantined) != 1 or "s1.session.json" not in quarantined[0]:
            fail(f"quarantine not reported in /stats: {quarantined}")
        quarantine_dir = os.path.join(store_dir, "quarantine")
        if not any("s1" in name for name in os.listdir(quarantine_dir)):
            fail("quarantine/ does not hold the corrupt spill")
    except Failure:
        daemon.kill()
        daemon.wait(timeout=10)
        raise
    else:
        sigterm_and_expect_clean_exit(daemon, "post-quarantine shutdown")

    return spilled["s2"]["generation"]


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip())
        return 2
    binary = argv[1]
    store_dir = argv[2] if len(argv) == 3 else "crash-recovery-store"
    shutil.rmtree(store_dir, ignore_errors=True)
    try:
        generation = run_gate(binary, store_dir)
    except Failure as failure:
        print(f"FAIL: {failure}")
        print(f"      (store left at {store_dir!r} for inspection)")
        return 1
    shutil.rmtree(store_dir, ignore_errors=True)
    print(
        "OK   ppg-serve crash recovery: SIGKILL mid-advance, rebooted from "
        f"generation {generation}, bit-exact continuation, corrupt spill "
        "quarantined"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
